"""Cells, nets and netlists.

This is a deliberately small structural netlist: enough fidelity for
placement, fanout analysis and static timing, without Verilog-level detail.

Cell granularity is one cell per *scheduled operator* (a 32-bit adder is one
cell of 32 LUTs), one cell per pipeline register bank, one per BRAM36, one
per FIFO controller, and one per FSM/controller.  Net granularity is one net
per logical signal; a net records its :class:`NetKind` so the timing engine
can classify critical paths into the paper's broadcast taxonomy.

Connectivity queries are backed by *maintained indexes*: the netlist keeps a
per-cell ``input_pins`` list (every ``(net, pin)`` the cell sinks) and a
per-cell driven-net list, updated on every structural mutation —
:meth:`Netlist.add_net`, :meth:`Net.add_sink`, whole-list ``net.sinks``
assignment, ``net.driver`` reassignment, :meth:`Netlist.remove_net` and
:meth:`Netlist.remove_cell`.  Consumers (STA, replication, retiming,
spreading) therefore never scan ``nets.values()`` to answer "what feeds this
cell"; a query is O(degree) instead of O(nets × sinks).

Index ordering is load-bearing: per-cell pin lists are kept sorted by net
*insertion sequence* (ties by position within the net's sink list), which is
exactly the iteration order the original scan-based queries produced.
Strict-inequality argmax loops in the timing engine break ties by first-seen
order, so preserving this order keeps results bit-for-bit identical.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import RTLError


class CellKind(enum.Enum):
    """Physical flavor of a cell; decides which fabric sites it can occupy."""

    LOGIC = "logic"  # LUT-implemented combinational operator
    DSP = "dsp"  # DSP-implemented operator (multipliers, float ops)
    FF = "ff"  # register bank (pipeline regs, replicated drivers)
    BRAM = "bram"  # one BRAM36 block
    FIFO = "fifo"  # FIFO controller (status flags live here)
    CTRL = "ctrl"  # FSM / pipeline controller
    PORT = "port"  # design boundary anchor (I/O, HBM port)

    @property
    def is_sequential(self) -> bool:
        """Does the cell's output launch from a clock edge?"""
        return self in (CellKind.FF, CellKind.BRAM, CellKind.FIFO, CellKind.CTRL, CellKind.PORT)


class NetKind(enum.Enum):
    """Signal class, used to attribute timing paths to broadcast types."""

    DATA = "data"  # datapath value (incl. §3.1 data broadcasts)
    MEM = "mem"  # data/address distribution to BRAM banks
    ENABLE = "enable"  # pipeline stall/enable broadcast (§3.3)
    SYNC = "sync"  # done-reduce / start-broadcast (§3.2)
    STATUS = "status"  # FIFO empty/full flags feeding control logic
    CLOCKLESS = "clockless"  # zero-delay logical connection (constants)


@dataclass
class Cell:
    """One placeable netlist element.

    Attributes:
        name: Unique name within the netlist.
        kind: :class:`CellKind` (drives legal sites and sequential-ness).
        delay_ns: Intrinsic delay — combinational propagation for LOGIC/DSP,
            clock-to-out for sequential kinds.
        luts/ffs/brams/dsps: Area in fabric primitives.
        tag: Provenance (op name, pipeline stage, controller id...).
        movable: True for registers inserted by broadcast-aware scheduling —
            the retiming pass may slide these along their chain.
        width: Bit width of the value this cell produces (0 when n/a).
    """

    name: str
    kind: CellKind
    delay_ns: float = 0.0
    luts: int = 0
    ffs: int = 0
    brams: int = 0
    dsps: int = 0
    tag: str = ""
    movable: bool = False
    width: int = 0

    @property
    def is_sequential(self) -> bool:
        return self.kind.is_sequential

    @property
    def site_count(self) -> int:
        """Rough number of fabric tiles the cell occupies (for spread)."""
        if self.kind is CellKind.BRAM:
            return 1
        if self.kind is CellKind.DSP:
            return max(1, self.dsps)
        return max(1, (self.luts + self.ffs // 2 + 63) // 64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cell {self.name} {self.kind.value}>"


class Net:
    """A signal from one driver cell to one or more sink cells.

    Sinks are (cell, pin) pairs; the pin string is informational except that
    distinct pins on the same cell count as distinct physical sinks.

    Once registered in a :class:`Netlist`, structural mutations — appending
    a sink, replacing the whole sink list, reassigning the driver — notify
    the owning netlist so its connectivity indexes stay exact.
    """

    __slots__ = ("name", "kind", "width", "_driver", "_sinks", "_owner", "_seq")

    def __init__(
        self,
        name: str,
        driver: Cell,
        sinks: Optional[List[Tuple[Cell, str]]] = None,
        kind: NetKind = NetKind.DATA,
        width: int = 1,
    ) -> None:
        self.name = name
        self.kind = kind
        self.width = width
        self._driver = driver
        self._sinks: List[Tuple[Cell, str]] = list(sinks) if sinks else []
        #: Owning netlist (set by :meth:`Netlist.add_net`).
        self._owner: Optional["Netlist"] = None
        #: Registration sequence number within the owner (insertion order).
        self._seq: int = -1

    # Support pickling despite __slots__ (FlowResults cross process
    # boundaries in the experiment engine).
    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)

    @property
    def driver(self) -> Cell:
        return self._driver

    @driver.setter
    def driver(self, cell: Cell) -> None:
        old = self._driver
        self._driver = cell
        if self._owner is not None:
            self._owner._reindex_driver(self, old, cell)

    @property
    def sinks(self) -> List[Tuple[Cell, str]]:
        return self._sinks

    @sinks.setter
    def sinks(self, new_sinks: List[Tuple[Cell, str]]) -> None:
        old = self._sinks
        self._sinks = list(new_sinks)
        if self._owner is not None:
            self._owner._reindex_sinks(self, old, self._sinks)

    @property
    def fanout(self) -> int:
        return len(self._sinks)

    def add_sink(self, cell: Cell, pin: str = "i") -> None:
        self._sinks.append((cell, pin))
        if self._owner is not None:
            self._owner._index_sink(self, cell, pin)

    def sink_cells(self) -> List[Cell]:
        return [cell for cell, _ in self._sinks]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Net {self.name} {self.kind.value} f={self.fanout}>"


class Netlist:
    """A named collection of cells and nets with integrity checking.

    Alongside the ``cells`` and ``nets`` dictionaries, the netlist maintains
    connectivity indexes (see module docstring).  Mutate structure through
    the provided APIs (``connect``/``add_net``/``add_sink``/``sinks``
    setter/``driver`` setter/``remove_net``/``remove_cell``) — raw ``del``
    on the dictionaries bypasses index maintenance and will be caught by
    :meth:`validate`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.cells: Dict[str, Cell] = {}
        self.nets: Dict[str, Net] = {}
        #: Monotonic registration counter; never reused, so ordering by
        #: ``Net._seq`` reproduces ``nets`` dict insertion order even after
        #: removals and re-additions.
        self._net_counter: int = 0
        #: cell name -> [(net, pin), ...] sorted by (net seq, sink position).
        self._input_pins: Dict[str, List[Tuple[Net, str]]] = {}
        #: cell name -> [net, ...] driven by the cell, sorted by net seq.
        self._driver_nets: Dict[str, List[Net]] = {}

    # -- construction ------------------------------------------------------
    def add_cell(self, cell: Cell) -> Cell:
        if cell.name in self.cells:
            raise RTLError(f"duplicate cell name {cell.name!r} in netlist {self.name!r}")
        self.cells[cell.name] = cell
        self._input_pins.setdefault(cell.name, [])
        self._driver_nets.setdefault(cell.name, [])
        return cell

    def new_cell(self, name: str, kind: CellKind, **kwargs) -> Cell:
        return self.add_cell(Cell(name=self._unique_cell_name(name), kind=kind, **kwargs))

    def _unique_cell_name(self, stem: str) -> str:
        if stem not in self.cells:
            return stem
        i = 1
        while f"{stem}.{i}" in self.cells:
            i += 1
        return f"{stem}.{i}"

    def add_net(self, net: Net) -> Net:
        if net.name in self.nets:
            raise RTLError(f"duplicate net name {net.name!r} in netlist {self.name!r}")
        if net.driver.name not in self.cells:
            raise RTLError(f"net {net.name!r} driven by foreign cell {net.driver.name!r}")
        self.nets[net.name] = net
        net._owner = self
        net._seq = self._net_counter
        self._net_counter += 1
        self._driver_nets.setdefault(net.driver.name, []).append(net)
        for cell, pin in net.sinks:
            self._index_sink(net, cell, pin)
        return net

    def remove_net(self, name: str) -> Net:
        """Unregister a net, keeping the connectivity indexes exact."""
        net = self.nets.pop(name, None)
        if net is None:
            raise RTLError(f"cannot remove unknown net {name!r} from netlist {self.name!r}")
        net._owner = None
        driven = self._driver_nets.get(net.driver.name)
        if driven is not None and net in driven:
            driven.remove(net)
        for cell_name in {cell.name for cell, _pin in net.sinks}:
            pins = self._input_pins.get(cell_name)
            if pins is not None:
                self._input_pins[cell_name] = [e for e in pins if e[0] is not net]
        return net

    def remove_cell(self, name: str) -> Cell:
        """Unregister a cell; it must no longer drive or sink any net."""
        cell = self.cells.get(name)
        if cell is None:
            raise RTLError(f"cannot remove unknown cell {name!r} from netlist {self.name!r}")
        if self._driver_nets.get(name):
            nets = [n.name for n in self._driver_nets[name]]
            raise RTLError(f"cannot remove cell {name!r}: still drives {nets}")
        if self._input_pins.get(name):
            nets = [n.name for n, _pin in self._input_pins[name]]
            raise RTLError(f"cannot remove cell {name!r}: still sinks {nets}")
        del self.cells[name]
        self._input_pins.pop(name, None)
        self._driver_nets.pop(name, None)
        return cell

    def connect(
        self,
        name: str,
        driver: Cell,
        sinks: Iterable[Tuple[Cell, str]],
        kind: NetKind = NetKind.DATA,
        width: int = 1,
    ) -> Net:
        """Create and register a net in one call (name uniquified)."""
        base = name
        i = 1
        while name in self.nets:
            name = f"{base}.{i}"
            i += 1
        net = Net(name=name, driver=driver, kind=kind, width=width)
        for cell, pin in sinks:
            net.add_sink(cell, pin)
        return self.add_net(net)

    # -- index maintenance -------------------------------------------------
    def _index_sink(self, net: Net, cell: Cell, pin: str) -> None:
        """Record one new (net, pin) input of ``cell``.

        Appends are O(1) in the common case (the net is the newest the cell
        has seen); a late ``add_sink`` on an older net triggers a stable
        re-sort by net sequence to restore scan order.
        """
        pins = self._input_pins.setdefault(cell.name, [])
        pins.append((net, pin))
        if len(pins) > 1 and pins[-2][0]._seq > net._seq:
            pins.sort(key=lambda entry: entry[0]._seq)

    def _reindex_sinks(
        self,
        net: Net,
        old_sinks: List[Tuple[Cell, str]],
        new_sinks: List[Tuple[Cell, str]],
    ) -> None:
        """Rebuild per-cell pin lists after a whole-list sink replacement."""
        affected = {cell.name for cell, _pin in old_sinks}
        affected.update(cell.name for cell, _pin in new_sinks)
        for cell_name in affected:
            pins = [e for e in self._input_pins.get(cell_name, ()) if e[0] is not net]
            pins.extend(
                (net, pin) for cell, pin in new_sinks if cell.name == cell_name
            )
            pins.sort(key=lambda entry: entry[0]._seq)
            self._input_pins[cell_name] = pins

    def _reindex_driver(self, net: Net, old: Cell, new: Cell) -> None:
        driven = self._driver_nets.get(old.name)
        if driven is not None and net in driven:
            driven.remove(net)
        pins = self._driver_nets.setdefault(new.name, [])
        pins.append(net)
        if len(pins) > 1 and pins[-2]._seq > net._seq:
            pins.sort(key=lambda n: n._seq)

    # -- queries ----------------------------------------------------------
    def driver_net_of(self, cell: Cell) -> Optional[Net]:
        """The net driven by ``cell``, if any (cells drive at most one net
        in this model; replication keeps that invariant)."""
        driven = self._driver_nets.get(cell.name)
        return driven[0] if driven else None

    def driver_nets_of(self, cell: Cell) -> List[Net]:
        """All nets driven by ``cell``, in registration order."""
        return list(self._driver_nets.get(cell.name, ()))

    def input_pins_of(self, cell: Cell) -> List[Tuple[Net, str]]:
        """Every (net, pin) input of ``cell``, one entry per physical sink
        pin, ordered by (net registration, sink position)."""
        return list(self._input_pins.get(cell.name, ()))

    def input_nets_of(self, cell: Cell) -> List[Net]:
        """Unique nets feeding ``cell``, in registration order."""
        nets: List[Net] = []
        seen: Set[int] = set()
        for net, _pin in self._input_pins.get(cell.name, ()):
            if id(net) not in seen:
                seen.add(id(net))
                nets.append(net)
        return nets

    def input_net_of(self, cell: Cell) -> Optional[Net]:
        """The first net feeding ``cell`` (registration order), or None."""
        pins = self._input_pins.get(cell.name)
        return pins[0][0] if pins else None

    def fanout_of(self, cell: Cell) -> int:
        net = self.driver_net_of(cell)
        return net.fanout if net is not None else 0

    def cells_of_kind(self, kind: CellKind) -> List[Cell]:
        return [cell for cell in self.cells.values() if cell.kind is kind]

    def nets_of_kind(self, kind: NetKind) -> List[Net]:
        return [net for net in self.nets.values() if net.kind is kind]

    def high_fanout_nets(self, threshold: int = 8) -> List[Net]:
        nets = [net for net in self.nets.values() if net.fanout >= threshold]
        nets.sort(key=lambda n: (-n.fanout, n.name))
        return nets

    # -- integrity ----------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`RTLError` on dangling references or comb loops."""
        for net in self.nets.values():
            if self.cells.get(net.driver.name) is not net.driver:
                raise RTLError(f"net {net.name!r}: stale driver {net.driver.name!r}")
            for cell, _pin in net.sinks:
                if self.cells.get(cell.name) is not cell:
                    raise RTLError(f"net {net.name!r}: stale sink {cell.name!r}")
            if net.fanout == 0:
                raise RTLError(f"net {net.name!r} has no sinks")
        self._check_indexes()
        self._check_comb_loops()

    def _check_indexes(self) -> None:
        """Verify the maintained indexes still mirror the net structure —
        catches raw dict mutation that bypassed the netlist APIs."""
        driver_counts: Dict[str, int] = {}
        pin_counts: Dict[str, int] = {}
        for net in self.nets.values():
            if net._owner is not self:
                raise RTLError(f"net {net.name!r} not owned by netlist {self.name!r}")
            driver_counts[net.driver.name] = driver_counts.get(net.driver.name, 0) + 1
            if net not in self._driver_nets.get(net.driver.name, ()):
                raise RTLError(f"net {net.name!r} missing from driver index")
            for cell, pin in net.sinks:
                pin_counts[cell.name] = pin_counts.get(cell.name, 0) + 1
                if not any(
                    e[0] is net and e[1] == pin
                    for e in self._input_pins.get(cell.name, ())
                ):
                    raise RTLError(
                        f"net {net.name!r} sink ({cell.name!r}, {pin!r}) "
                        f"missing from input-pin index"
                    )
        for name, driven in self._driver_nets.items():
            if len(driven) != driver_counts.get(name, 0):
                raise RTLError(f"driver index for {name!r} has stale entries")
        for name, pins in self._input_pins.items():
            if len(pins) != pin_counts.get(name, 0):
                raise RTLError(f"input-pin index for {name!r} has stale entries")

    def _check_comb_loops(self) -> None:
        """Detect combinational cycles (sequential cells break paths)."""
        succ: Dict[str, List[str]] = {name: [] for name in self.cells}
        indeg: Dict[str, int] = {name: 0 for name in self.cells}
        for net in self.nets.values():
            if net.driver.is_sequential:
                continue
            for cell, _pin in net.sinks:
                if cell.is_sequential:
                    continue
                succ[net.driver.name].append(cell.name)
                indeg[cell.name] += 1
        ready = [name for name, d in indeg.items() if d == 0]
        visited = 0
        while ready:
            name = ready.pop()
            visited += 1
            for nxt in succ[name]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
        if visited != len(self.cells):
            stuck = sorted(name for name, d in indeg.items() if d > 0)[:5]
            raise RTLError(
                f"combinational loop in netlist {self.name!r} involving {stuck}"
            )

    # -- stats ----------------------------------------------------------------
    def area(self) -> Dict[str, int]:
        """Total primitive usage: luts/ffs/brams/dsps."""
        totals = {"luts": 0, "ffs": 0, "brams": 0, "dsps": 0}
        for cell in self.cells.values():
            totals["luts"] += cell.luts
            totals["ffs"] += cell.ffs
            totals["brams"] += cell.brams
            totals["dsps"] += cell.dsps
        return totals

    def merge(self, other: "Netlist", prefix: str = "") -> Dict[str, Cell]:
        """Absorb ``other``'s cells and nets (optionally prefixed).

        Returns a map from the other netlist's cell names to the absorbed
        cells so callers can stitch cross-netlist connections.
        """
        mapping: Dict[str, Cell] = {}
        for cell in other.cells.values():
            clone = Cell(
                name=self._unique_cell_name(prefix + cell.name),
                kind=cell.kind,
                delay_ns=cell.delay_ns,
                luts=cell.luts,
                ffs=cell.ffs,
                brams=cell.brams,
                dsps=cell.dsps,
                tag=cell.tag,
                movable=cell.movable,
                width=cell.width,
            )
            self.add_cell(clone)
            mapping[cell.name] = clone
        for net in other.nets.values():
            self.connect(
                prefix + net.name,
                mapping[net.driver.name],
                [(mapping[cell.name], pin) for cell, pin in net.sinks],
                kind=net.kind,
                width=net.width,
            )
        return mapping

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Netlist {self.name!r}: {len(self.cells)} cells, {len(self.nets)} nets>"
