"""Cells, nets and netlists.

This is a deliberately small structural netlist: enough fidelity for
placement, fanout analysis and static timing, without Verilog-level detail.

Cell granularity is one cell per *scheduled operator* (a 32-bit adder is one
cell of 32 LUTs), one cell per pipeline register bank, one per BRAM36, one
per FIFO controller, and one per FSM/controller.  Net granularity is one net
per logical signal; a net records its :class:`NetKind` so the timing engine
can classify critical paths into the paper's broadcast taxonomy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import RTLError


class CellKind(enum.Enum):
    """Physical flavor of a cell; decides which fabric sites it can occupy."""

    LOGIC = "logic"  # LUT-implemented combinational operator
    DSP = "dsp"  # DSP-implemented operator (multipliers, float ops)
    FF = "ff"  # register bank (pipeline regs, replicated drivers)
    BRAM = "bram"  # one BRAM36 block
    FIFO = "fifo"  # FIFO controller (status flags live here)
    CTRL = "ctrl"  # FSM / pipeline controller
    PORT = "port"  # design boundary anchor (I/O, HBM port)

    @property
    def is_sequential(self) -> bool:
        """Does the cell's output launch from a clock edge?"""
        return self in (CellKind.FF, CellKind.BRAM, CellKind.FIFO, CellKind.CTRL, CellKind.PORT)


class NetKind(enum.Enum):
    """Signal class, used to attribute timing paths to broadcast types."""

    DATA = "data"  # datapath value (incl. §3.1 data broadcasts)
    MEM = "mem"  # data/address distribution to BRAM banks
    ENABLE = "enable"  # pipeline stall/enable broadcast (§3.3)
    SYNC = "sync"  # done-reduce / start-broadcast (§3.2)
    STATUS = "status"  # FIFO empty/full flags feeding control logic
    CLOCKLESS = "clockless"  # zero-delay logical connection (constants)


@dataclass
class Cell:
    """One placeable netlist element.

    Attributes:
        name: Unique name within the netlist.
        kind: :class:`CellKind` (drives legal sites and sequential-ness).
        delay_ns: Intrinsic delay — combinational propagation for LOGIC/DSP,
            clock-to-out for sequential kinds.
        luts/ffs/brams/dsps: Area in fabric primitives.
        tag: Provenance (op name, pipeline stage, controller id...).
        movable: True for registers inserted by broadcast-aware scheduling —
            the retiming pass may slide these along their chain.
        width: Bit width of the value this cell produces (0 when n/a).
    """

    name: str
    kind: CellKind
    delay_ns: float = 0.0
    luts: int = 0
    ffs: int = 0
    brams: int = 0
    dsps: int = 0
    tag: str = ""
    movable: bool = False
    width: int = 0

    @property
    def is_sequential(self) -> bool:
        return self.kind.is_sequential

    @property
    def site_count(self) -> int:
        """Rough number of fabric tiles the cell occupies (for spread)."""
        if self.kind is CellKind.BRAM:
            return 1
        if self.kind is CellKind.DSP:
            return max(1, self.dsps)
        return max(1, (self.luts + self.ffs // 2 + 63) // 64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cell {self.name} {self.kind.value}>"


@dataclass
class Net:
    """A signal from one driver cell to one or more sink cells.

    Sinks are (cell, pin) pairs; the pin string is informational except that
    distinct pins on the same cell count as distinct physical sinks.
    """

    name: str
    driver: Cell
    sinks: List[Tuple[Cell, str]] = field(default_factory=list)
    kind: NetKind = NetKind.DATA
    width: int = 1

    @property
    def fanout(self) -> int:
        return len(self.sinks)

    def add_sink(self, cell: Cell, pin: str = "i") -> None:
        self.sinks.append((cell, pin))

    def sink_cells(self) -> List[Cell]:
        return [cell for cell, _ in self.sinks]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Net {self.name} {self.kind.value} f={self.fanout}>"


class Netlist:
    """A named collection of cells and nets with integrity checking."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.cells: Dict[str, Cell] = {}
        self.nets: Dict[str, Net] = {}

    # -- construction ------------------------------------------------------
    def add_cell(self, cell: Cell) -> Cell:
        if cell.name in self.cells:
            raise RTLError(f"duplicate cell name {cell.name!r} in netlist {self.name!r}")
        self.cells[cell.name] = cell
        return cell

    def new_cell(self, name: str, kind: CellKind, **kwargs) -> Cell:
        return self.add_cell(Cell(name=self._unique_cell_name(name), kind=kind, **kwargs))

    def _unique_cell_name(self, stem: str) -> str:
        if stem not in self.cells:
            return stem
        i = 1
        while f"{stem}.{i}" in self.cells:
            i += 1
        return f"{stem}.{i}"

    def add_net(self, net: Net) -> Net:
        if net.name in self.nets:
            raise RTLError(f"duplicate net name {net.name!r} in netlist {self.name!r}")
        if net.driver.name not in self.cells:
            raise RTLError(f"net {net.name!r} driven by foreign cell {net.driver.name!r}")
        self.nets[net.name] = net
        return net

    def connect(
        self,
        name: str,
        driver: Cell,
        sinks: Iterable[Tuple[Cell, str]],
        kind: NetKind = NetKind.DATA,
        width: int = 1,
    ) -> Net:
        """Create and register a net in one call (name uniquified)."""
        base = name
        i = 1
        while name in self.nets:
            name = f"{base}.{i}"
            i += 1
        net = Net(name=name, driver=driver, kind=kind, width=width)
        for cell, pin in sinks:
            net.add_sink(cell, pin)
        return self.add_net(net)

    # -- queries ----------------------------------------------------------
    def driver_net_of(self, cell: Cell) -> Optional[Net]:
        """The net driven by ``cell``, if any (cells drive at most one net
        in this model; replication keeps that invariant)."""
        for net in self.nets.values():
            if net.driver is cell:
                return net
        return None

    def input_nets_of(self, cell: Cell) -> List[Net]:
        return [net for net in self.nets.values() if cell in net.sink_cells()]

    def fanout_of(self, cell: Cell) -> int:
        net = self.driver_net_of(cell)
        return net.fanout if net is not None else 0

    def cells_of_kind(self, kind: CellKind) -> List[Cell]:
        return [cell for cell in self.cells.values() if cell.kind is kind]

    def nets_of_kind(self, kind: NetKind) -> List[Net]:
        return [net for net in self.nets.values() if net.kind is kind]

    def high_fanout_nets(self, threshold: int = 8) -> List[Net]:
        nets = [net for net in self.nets.values() if net.fanout >= threshold]
        nets.sort(key=lambda n: (-n.fanout, n.name))
        return nets

    # -- integrity ----------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`RTLError` on dangling references or comb loops."""
        for net in self.nets.values():
            if self.cells.get(net.driver.name) is not net.driver:
                raise RTLError(f"net {net.name!r}: stale driver {net.driver.name!r}")
            for cell, _pin in net.sinks:
                if self.cells.get(cell.name) is not cell:
                    raise RTLError(f"net {net.name!r}: stale sink {cell.name!r}")
            if net.fanout == 0:
                raise RTLError(f"net {net.name!r} has no sinks")
        self._check_comb_loops()

    def _check_comb_loops(self) -> None:
        """Detect combinational cycles (sequential cells break paths)."""
        succ: Dict[str, List[str]] = {name: [] for name in self.cells}
        indeg: Dict[str, int] = {name: 0 for name in self.cells}
        for net in self.nets.values():
            if net.driver.is_sequential:
                continue
            for cell, _pin in net.sinks:
                if cell.is_sequential:
                    continue
                succ[net.driver.name].append(cell.name)
                indeg[cell.name] += 1
        ready = [name for name, d in indeg.items() if d == 0]
        visited = 0
        while ready:
            name = ready.pop()
            visited += 1
            for nxt in succ[name]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
        if visited != len(self.cells):
            stuck = sorted(name for name, d in indeg.items() if d > 0)[:5]
            raise RTLError(
                f"combinational loop in netlist {self.name!r} involving {stuck}"
            )

    # -- stats ----------------------------------------------------------------
    def area(self) -> Dict[str, int]:
        """Total primitive usage: luts/ffs/brams/dsps."""
        totals = {"luts": 0, "ffs": 0, "brams": 0, "dsps": 0}
        for cell in self.cells.values():
            totals["luts"] += cell.luts
            totals["ffs"] += cell.ffs
            totals["brams"] += cell.brams
            totals["dsps"] += cell.dsps
        return totals

    def merge(self, other: "Netlist", prefix: str = "") -> Dict[str, Cell]:
        """Absorb ``other``'s cells and nets (optionally prefixed).

        Returns a map from the other netlist's cell names to the absorbed
        cells so callers can stitch cross-netlist connections.
        """
        mapping: Dict[str, Cell] = {}
        for cell in other.cells.values():
            clone = Cell(
                name=self._unique_cell_name(prefix + cell.name),
                kind=cell.kind,
                delay_ns=cell.delay_ns,
                luts=cell.luts,
                ffs=cell.ffs,
                brams=cell.brams,
                dsps=cell.dsps,
                tag=cell.tag,
                movable=cell.movable,
                width=cell.width,
            )
            self.add_cell(clone)
            mapping[cell.name] = clone
        for net in other.nets.values():
            self.connect(
                prefix + net.name,
                mapping[net.driver.name],
                [(mapping[cell.name], pin) for cell, pin in net.sinks],
                kind=net.kind,
                width=net.width,
            )
        return mapping

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Netlist {self.name!r}: {len(self.cells)} cells, {len(self.nets)} nets>"
