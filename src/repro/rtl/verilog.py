"""Structural Verilog emission for generated netlists.

The model netlist is coarser than gate-level RTL (one cell per scheduled
operator), so the emitted Verilog is a *structural skeleton*: one module
instance per cell, one wire per net, with cell parameters recording the
modelled delay/area.  It is meant for inspection and for feeding graph-based
downstream tooling — not for synthesis — and round-trips the information the
timing model uses.

Primitive library (one Verilog module per :class:`CellKind`):

* ``REPRO_LOGIC`` / ``REPRO_DSP`` — combinational block, ``delay_ps`` param;
* ``REPRO_FF`` / ``REPRO_CTRL`` / ``REPRO_FIFO`` / ``REPRO_BRAM`` —
  sequential blocks with clock-to-out parameters;
* ``REPRO_PORT`` — I/O anchor.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.rtl.netlist import Cell, CellKind, Net, Netlist

_IDENT_RE = re.compile(r"[^A-Za-z0-9_]")


def _escape(name: str) -> str:
    """Map a netlist name to a legal Verilog identifier."""
    ident = _IDENT_RE.sub("_", name)
    if not ident or ident[0].isdigit():
        ident = "n_" + ident
    return ident


_KIND_MODULE = {
    CellKind.LOGIC: "REPRO_LOGIC",
    CellKind.DSP: "REPRO_DSP",
    CellKind.FF: "REPRO_FF",
    CellKind.BRAM: "REPRO_BRAM",
    CellKind.FIFO: "REPRO_FIFO",
    CellKind.CTRL: "REPRO_CTRL",
    CellKind.PORT: "REPRO_PORT",
}

_PRIMITIVES = """\
// ---- repro primitive library (behavioural placeholders) ----
module REPRO_LOGIC #(parameter DELAY_PS = 0, WIDTH = 1)
    (input  wire [WIDTH-1:0] i, output wire [WIDTH-1:0] o);
  assign o = i;
endmodule

module REPRO_DSP #(parameter DELAY_PS = 0, WIDTH = 1)
    (input  wire [WIDTH-1:0] i, output wire [WIDTH-1:0] o);
  assign o = i;
endmodule

module REPRO_FF #(parameter CLK2Q_PS = 0, WIDTH = 1)
    (input wire clk, input wire [WIDTH-1:0] d, output reg [WIDTH-1:0] q);
  always @(posedge clk) q <= d;
endmodule

module REPRO_BRAM #(parameter CLK2Q_PS = 0, WIDTH = 1)
    (input wire clk, input wire [WIDTH-1:0] d, output reg [WIDTH-1:0] q);
  always @(posedge clk) q <= d;
endmodule

module REPRO_FIFO #(parameter CLK2Q_PS = 0, WIDTH = 1)
    (input wire clk, input wire [WIDTH-1:0] d, output reg [WIDTH-1:0] q);
  always @(posedge clk) q <= d;
endmodule

module REPRO_CTRL #(parameter CLK2Q_PS = 0, WIDTH = 1)
    (input wire clk, input wire [WIDTH-1:0] d, output reg [WIDTH-1:0] q);
  always @(posedge clk) q <= d;
endmodule

module REPRO_PORT #(parameter WIDTH = 1)
    (output wire [WIDTH-1:0] q);
  assign q = {WIDTH{1'b0}};
endmodule
// ---- end primitive library ----
"""


def emit_verilog(netlist: Netlist, include_primitives: bool = True) -> str:
    """Render ``netlist`` as structural Verilog text."""
    driver_net: Dict[str, Net] = {}
    for net in netlist.nets.values():
        driver_net[net.driver.name] = net

    lines: List[str] = []
    if include_primitives:
        lines.append(_PRIMITIVES)
    top = _escape(netlist.name)
    lines.append(f"module {top} (input wire clk);")

    # Wires: one per net.
    for net in netlist.nets.values():
        width = max(1, net.width)
        comment = f"  // kind={net.kind.value} fanout={net.fanout}"
        lines.append(f"  wire [{width - 1}:0] {_escape(net.name)};{comment}")
    lines.append("")

    # Instances: one per cell.  The input connection is the worst-case
    # single representative (the structural skeleton keeps one input port).
    input_of: Dict[str, str] = {}
    for net in netlist.nets.values():
        for cell, _pin in net.sinks:
            input_of.setdefault(cell.name, _escape(net.name))

    for cell in netlist.cells.values():
        module = _KIND_MODULE[cell.kind]
        width = max(1, cell.width)
        inst = _escape(cell.name)
        out = driver_net.get(cell.name)
        out_expr = _escape(out.name) if out is not None else ""
        in_expr = input_of.get(cell.name, f"{width}'b0")
        params = f"#(.WIDTH({width})"
        if cell.kind in (CellKind.LOGIC, CellKind.DSP):
            params += f", .DELAY_PS({int(cell.delay_ns * 1000)})"
        elif cell.kind is not CellKind.PORT:
            params += f", .CLK2Q_PS({int(cell.delay_ns * 1000)})"
        params += ")"
        area = f"luts={cell.luts} ffs={cell.ffs} brams={cell.brams} dsps={cell.dsps}"
        if cell.kind is CellKind.PORT:
            ports = f"(.q({out_expr}))" if out_expr else "()"
        elif cell.kind in (CellKind.LOGIC, CellKind.DSP):
            ports = f"(.i({in_expr}), .o({out_expr}))" if out_expr else f"(.i({in_expr}), .o())"
        else:
            ports = (
                f"(.clk(clk), .d({in_expr}), .q({out_expr}))"
                if out_expr
                else f"(.clk(clk), .d({in_expr}), .q())"
            )
        lines.append(f"  {module} {params} {inst} {ports};  // {area}")

    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog(netlist: Netlist, path: str, include_primitives: bool = True) -> None:
    """Emit :func:`emit_verilog` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(emit_verilog(netlist, include_primitives=include_primitives))
