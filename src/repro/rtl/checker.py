"""Netlist ↔ schedule consistency checking.

The generator is the least-checkable part of the flow (its output is a
graph, not a value), so this module verifies structural invariants that
must hold between a schedule and the netlist generated from it:

* every scheduled non-const operation has a corresponding cell;
* every BRAM bank of every buffer is reachable from some memory net;
* values consumed in a later cycle than produced pass through at least
  ``consumer_cycle - producer_finish`` register cells (pipeline balance);
* skid-controlled loops have exactly one valid flag per stage;
* the netlist has no dangling cells (everything placed on some net).

Run in tests and available to users as a post-generation sanity gate.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.errors import RTLError
from repro.ir.ops import Opcode
from repro.rtl.generator import GenResult
from repro.rtl.netlist import Cell, CellKind
from repro.scheduling.schedule import Schedule


def check_generated(gen: GenResult, schedules: Dict[Tuple[str, str], Schedule]) -> List[str]:
    """Run all consistency checks; returns a list of violation strings.

    An empty list means the netlist is consistent with its schedules.
    """
    problems: List[str] = []
    problems.extend(_check_ops_have_cells(gen, schedules))
    problems.extend(_check_banks_connected(gen))
    problems.extend(_check_register_balance(gen, schedules))
    problems.extend(_check_no_dangling_cells(gen))
    return problems


def assert_consistent(gen: GenResult, schedules: Dict[Tuple[str, str], Schedule]) -> None:
    """Raise :class:`RTLError` listing every violation, if any."""
    problems = check_generated(gen, schedules)
    if problems:
        raise RTLError(
            f"netlist/schedule inconsistency ({len(problems)} issue(s)):\n  "
            + "\n  ".join(problems[:20])
        )


# ----------------------------------------------------------------------
def _check_ops_have_cells(gen, schedules) -> List[str]:
    problems = []
    cell_names = set(gen.netlist.cells)
    for (kernel, loop), schedule in schedules.items():
        prefix = f"{kernel}.{loop}."
        for entry in schedule.entries.values():
            op = entry.op
            if op.opcode in (Opcode.CONST, Opcode.TRUNC, Opcode.ZEXT, Opcode.SEXT):
                continue  # absorbed into wiring / consuming LUTs
            stems = {
                Opcode.REG: f"reg_{op.name}",
                Opcode.FIFO_READ: f"rd_{op.name}",
                Opcode.FIFO_WRITE: f"wr_{op.name}",
                Opcode.STORE: f"st_{op.name}",
                Opcode.CALL: f"call_{op.name}",
            }
            stem = stems.get(op.opcode, f"op_{op.name}")
            if op.opcode is Opcode.LOAD:
                stem = f"ld_{op.name}"
                if not any(name.startswith(prefix + stem) for name in cell_names):
                    problems.append(f"load {op.name} has no port cells in netlist")
                continue
            if prefix + stem not in cell_names:
                problems.append(f"op {op.name} ({op.opcode.value}) has no cell")
    return problems


def _check_banks_connected(gen) -> List[str]:
    problems = []
    fed: Set[str] = set()
    for net in gen.netlist.nets.values():
        for cell, _pin in net.sinks:
            fed.add(cell.name)
        fed.add(net.driver.name)
    for cell in gen.netlist.cells.values():
        if cell.kind is CellKind.BRAM and cell.name not in fed:
            problems.append(f"BRAM bank {cell.name} unreachable from any net")
    return problems


def _count_regs_between(gen, start: Cell, target_names: Set[str], limit: int = 64) -> int:
    """Minimum FF cells on any path from ``start`` to one of the targets."""
    # BFS over nets tracking register counts.
    best = None
    frontier: List[Tuple[Cell, int]] = [(start, 0)]
    seen: Dict[str, int] = {}
    steps = 0
    while frontier and steps < 100_000:
        steps += 1
        cell, regs = frontier.pop()
        if cell.name in target_names:
            best = regs if best is None else min(best, regs)
            continue
        if seen.get(cell.name, 1 << 30) <= regs or regs > limit:
            continue
        seen[cell.name] = regs
        net = gen.netlist.driver_net_of(cell)
        if net is None:
            continue
        for sink, _pin in net.sinks:
            extra = 1 if sink.kind in (CellKind.FF, CellKind.BRAM) else 0
            frontier.append((sink, regs + extra))
    return -1 if best is None else best


def _check_register_balance(gen, schedules) -> List[str]:
    """Values crossing N cycle boundaries traverse >= N registers."""
    problems = []
    for (kernel, loop), schedule in schedules.items():
        prefix = f"{kernel}.{loop}."
        for entry in schedule.entries.values():
            op = entry.op
            if op.result is None or op.opcode is Opcode.CONST:
                continue
            producer_cell = None
            for stem in (f"op_{op.name}", f"reg_{op.name}", f"rd_{op.name}", f"call_{op.name}"):
                producer_cell = gen.netlist.cells.get(prefix + stem)
                if producer_cell is not None:
                    break
            if producer_cell is None:
                continue
            for consumer in op.result.uses:
                gap = schedule.entries[consumer.name].cycle - entry.finish_cycle
                if gap < 1:
                    continue
                targets = {
                    prefix + f"op_{consumer.name}",
                    prefix + f"st_{consumer.name}",
                    prefix + f"wr_{consumer.name}",
                    prefix + f"call_{consumer.name}",
                    prefix + f"reg_{consumer.name}",
                }
                regs = _count_regs_between(gen, producer_cell, targets)
                if regs >= 0 and regs < gap:
                    problems.append(
                        f"{op.name} -> {consumer.name}: {gap} cycle gap but "
                        f"only {regs} register(s) on the path"
                    )
    return problems


def _check_no_dangling_cells(gen) -> List[str]:
    connected: Set[str] = set()
    for net in gen.netlist.nets.values():
        connected.add(net.driver.name)
        connected.update(cell.name for cell, _pin in net.sinks)
    return [
        f"cell {name} is not on any net"
        for name, cell in gen.netlist.cells.items()
        if name not in connected and cell.kind is not CellKind.PORT
    ]
