"""Optimization configuration: which of the paper's techniques to apply.

The three techniques compose freely (Table 1 applies different subsets per
design; Table 3 and Fig. 19 sweep them):

* ``broadcast_aware`` — §4.1 calibrated re-scheduling + extra pipelining;
* ``sync_pruning``   — §4.2 flow splitting + longest-latency call sync;
* ``control``        — §3.3 stall baseline vs §4.3 skid / min-area skid.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict

from repro.control.styles import ControlStyle


@dataclass(frozen=True)
class OptimizationConfig:
    """Selection of paper techniques for one flow run."""

    broadcast_aware: bool = False
    sync_pruning: bool = False
    control: ControlStyle = ControlStyle.STALL

    @property
    def label(self) -> str:
        parts = []
        if self.broadcast_aware:
            parts.append("data")
        if self.sync_pruning:
            parts.append("sync")
        if self.control.uses_skid:
            parts.append(self.control.value)
        return "+".join(parts) if parts else "orig"

    def with_control(self, control: ControlStyle) -> "OptimizationConfig":
        return replace(self, control=control)

    def to_json(self) -> Dict[str, Any]:
        """The canonical (sorted-key, JSON-able, hash-stable) encoding.

        This is the single wire/digest form of a config — request hashing,
        the DSE point digests and every serializing call site build on it,
        so its key set and value types are part of the stored-result
        compatibility contract.
        """
        return {
            "broadcast_aware": bool(self.broadcast_aware),
            "control": self.control.value,
            "sync_pruning": bool(self.sync_pruning),
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "OptimizationConfig":
        """Inverse of :meth:`to_json` (missing keys take the defaults)."""
        return cls(
            broadcast_aware=bool(payload.get("broadcast_aware", False)),
            sync_pruning=bool(payload.get("sync_pruning", False)),
            control=ControlStyle(payload.get("control", ControlStyle.STALL.value)),
        )


#: The unmodified HLS output (Table 1 "Orig").
BASELINE = OptimizationConfig()

#: All three techniques, min-area skid control (Table 1 "Opt").
FULL = OptimizationConfig(
    broadcast_aware=True,
    sync_pruning=True,
    control=ControlStyle.SKID_MINAREA,
)

#: Only §4.1 (Table 3 "Opt. Data", Fig. 19 middle curve).
DATA_ONLY = OptimizationConfig(broadcast_aware=True)

#: Only control-related fixes (§4.2 + §4.3).
CTRL_ONLY = OptimizationConfig(
    sync_pruning=True, control=ControlStyle.SKID_MINAREA
)

#: §4.3 with the naive end-of-pipeline buffer (Table 2 "Skid Buffer").
SKID_NAIVE = OptimizationConfig(
    broadcast_aware=True, sync_pruning=True, control=ControlStyle.SKID
)

#: The named configurations user-facing surfaces accept (the CLI's
#: ``--config`` labels and the flow service's ``"config"`` field).
CONFIG_LABELS = {
    "orig": BASELINE,
    "data": DATA_ONLY,
    "ctrl": CTRL_ONLY,
    "full": FULL,
    "skid": OptimizationConfig(control=ControlStyle.SKID),
    "skid_minarea": OptimizationConfig(control=ControlStyle.SKID_MINAREA),
}
