"""Post-placement spreading of movable register chains.

When broadcast-aware scheduling adds pipelining to a long-haul connection
(e.g. the data distribution into a sea of BRAM banks), the registers only
help if the physical tools spread them *along the route* so each cycle
covers a fraction of the distance.  Real flows get this from
placement-aware retiming; we model it directly: every maximal chain of
movable registers is re-positioned at even intervals between its driver and
the centroid of its final sinks.

This pass runs after placement and before replication, so the last register
of a spread chain sits near its sink cluster and replication then splits
the final hop locally.
"""

from __future__ import annotations

from typing import List, Optional

from repro import obs
from repro.physical.placement import Placement
from repro.rtl.netlist import Cell, CellKind, Net, Netlist


def _out_net(netlist: Netlist, cell: Cell) -> Optional[Net]:
    """Last-registered net driven by ``cell`` (the seed scan's overwrite
    semantics for multi-output cells)."""
    driven = netlist.driver_nets_of(cell)
    return driven[-1] if driven else None


def _is_chain_link(netlist: Netlist, cell: Cell) -> bool:
    """A movable single-pin-input cell is a chain link.

    Movable FFs are scheduler-inserted registers; movable LOGIC/DSP cells
    are the internal stages of pipelined cores (float units, DSP
    multipliers), which retiming-aware physical tools slide along routes.
    """
    return (
        cell.movable
        and cell.kind in (CellKind.FF, CellKind.LOGIC, CellKind.DSP)
        and len(netlist.input_pins_of(cell)) == 1
    )


def spread_movable_chains(netlist: Netlist, placement: Placement) -> int:
    """Re-position movable register chains evenly along their routes.

    Returns the number of registers moved.
    """
    moved = 0
    visited = set()
    for cell in list(netlist.cells.values()):
        if not _is_chain_link(netlist, cell) or cell.name in visited:
            continue
        # Walk to the head of this chain.
        head = cell
        while True:
            driver = netlist.input_net_of(head).driver
            driver_out = _out_net(netlist, driver)
            if (
                _is_chain_link(netlist, driver)
                and driver_out is not None
                and driver_out.fanout == 1
            ):
                head = driver
            else:
                break
        # Collect the chain forward from the head.
        chain: List[Cell] = [head]
        while True:
            net = _out_net(netlist, chain[-1])
            if net is None or net.fanout != 1:
                break
            nxt = net.sinks[0][0]
            if _is_chain_link(netlist, nxt):
                chain.append(nxt)
            else:
                break
        visited.update(c.name for c in chain)
        if not chain:
            continue
        source = netlist.input_net_of(head).driver
        tail_net = _out_net(netlist, chain[-1])
        if tail_net is None or not tail_net.sinks:
            continue
        sx, sy = placement.pos[source.name]
        txs = [placement.pos[c.name][0] for c, _p in tail_net.sinks]
        tys = [placement.pos[c.name][1] for c, _p in tail_net.sinks]
        tx, ty = sum(txs) / len(txs), sum(tys) / len(tys)
        n = len(chain)
        obs.observe("spreading.chain_length", n)
        for i, reg in enumerate(chain, start=1):
            frac = i / (n + 1)
            placement.put(reg, sx + frac * (tx - sx), sy + frac * (ty - sy), 0.0)
            moved += 1
    obs.add("physical.registers_spread", moved)
    return moved
