"""Post-placement spreading of movable register chains.

When broadcast-aware scheduling adds pipelining to a long-haul connection
(e.g. the data distribution into a sea of BRAM banks), the registers only
help if the physical tools spread them *along the route* so each cycle
covers a fraction of the distance.  Real flows get this from
placement-aware retiming; we model it directly: every maximal chain of
movable registers is re-positioned at even intervals between its driver and
the centroid of its final sinks.

This pass runs after placement and before replication, so the last register
of a spread chain sits near its sink cluster and replication then splits
the final hop locally.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.physical.placement import Placement
from repro.rtl.netlist import Cell, CellKind, Net, Netlist


def _io_maps(netlist: Netlist) -> Tuple[Dict[str, Net], Dict[str, List[Net]]]:
    out_net: Dict[str, Net] = {}
    in_nets: Dict[str, List[Net]] = {}
    for net in netlist.nets.values():
        out_net[net.driver.name] = net
        for cell, _pin in net.sinks:
            in_nets.setdefault(cell.name, []).append(net)
    return out_net, in_nets


def _is_chain_link(cell: Cell, in_nets: Dict[str, List[Net]]) -> bool:
    """A movable single-input cell is a chain link.

    Movable FFs are scheduler-inserted registers; movable LOGIC/DSP cells
    are the internal stages of pipelined cores (float units, DSP
    multipliers), which retiming-aware physical tools slide along routes.
    """
    return (
        cell.movable
        and cell.kind in (CellKind.FF, CellKind.LOGIC, CellKind.DSP)
        and len(in_nets.get(cell.name, [])) == 1
    )


def spread_movable_chains(netlist: Netlist, placement: Placement) -> int:
    """Re-position movable register chains evenly along their routes.

    Returns the number of registers moved.
    """
    out_net, in_nets = _io_maps(netlist)
    moved = 0
    visited = set()
    for cell in list(netlist.cells.values()):
        if not _is_chain_link(cell, in_nets) or cell.name in visited:
            continue
        # Walk to the head of this chain.
        head = cell
        while True:
            driver = in_nets[head.name][0].driver
            if (
                _is_chain_link(driver, in_nets)
                and out_net.get(driver.name) is not None
                and out_net[driver.name].fanout == 1
            ):
                head = driver
            else:
                break
        # Collect the chain forward from the head.
        chain: List[Cell] = [head]
        while True:
            net = out_net.get(chain[-1].name)
            if net is None or net.fanout != 1:
                break
            nxt = net.sinks[0][0]
            if _is_chain_link(nxt, in_nets):
                chain.append(nxt)
            else:
                break
        visited.update(c.name for c in chain)
        if not chain:
            continue
        source = in_nets[head.name][0].driver
        tail_net = out_net.get(chain[-1].name)
        if tail_net is None or not tail_net.sinks:
            continue
        sx, sy = placement.pos[source.name]
        txs = [placement.pos[c.name][0] for c, _p in tail_net.sinks]
        tys = [placement.pos[c.name][1] for c, _p in tail_net.sinks]
        tx, ty = sum(txs) / len(txs), sum(tys) / len(tys)
        n = len(chain)
        obs.observe("spreading.chain_length", n)
        for i, reg in enumerate(chain, start=1):
            frac = i / (n + 1)
            placement.put(reg, sx + frac * (tx - sx), sy + frac * (ty - sy), 0.0)
            moved += 1
    obs.add("physical.registers_spread", moved)
    return moved
