"""Movable-register retiming.

Broadcast-aware scheduling inserts explicit register stages ("register
modules", §4.1) and the paper notes their main effect is to *enable*
downstream retiming/fanout optimization.  This pass models that: registers
flagged ``movable`` may be pushed backward across their driving
combinational cell (Leiserson–Saxe backward move, restricted to the
single-fanout case), re-balancing the two cycles around the register.

The pass is conservative: a move is committed only when a trial STA run
confirms the period improved.  Trials mutate the live netlist through
:class:`_MoveRecord` apply/undo pairs and re-time only the forward damage
cone via :meth:`TimingAnalyzer.update` — a rejected move is rolled back
exactly, so failures leave the input untouched.  Trial cost is therefore
proportional to the edited cone, not the netlist, which is why the default
move budget is generous.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import obs
from repro.physical.placement import Placement
from repro.physical.timing import MIN_PERIOD_NS, TimingAnalyzer
from repro.rtl.netlist import Cell, CellKind, Net, Netlist


def clone_netlist(netlist: Netlist) -> Netlist:
    """Deep-copy a netlist preserving cell and net names."""
    copy = Netlist(netlist.name)
    copy.merge(netlist)
    return copy


def clone_placement(placement: Placement) -> Placement:
    copy = Placement()
    copy.pos = dict(placement.pos)
    copy.radius = dict(placement.radius)
    copy._epoch = dict(placement._epoch)
    return copy


@dataclass
class _MoveRecord:
    """Everything needed to undo one backward move exactly."""

    ff: Cell
    c: Cell
    n_in: Net
    n_out: Net
    new_ffs: List[Cell] = field(default_factory=list)
    new_nets: List[Net] = field(default_factory=list)
    #: (net, sink list before the move) for each rewired input net of ``c``.
    rewired: List[Tuple[Net, List[Tuple[Cell, str]]]] = field(default_factory=list)


def _single_input_net(netlist: Netlist, cell: Cell) -> Optional[Net]:
    """The unique net feeding ``cell``, or None."""
    nets = netlist.input_nets_of(cell)
    return nets[0] if len(nets) == 1 else None


def _apply_backward_move(
    netlist: Netlist, placement: Placement, ff: Cell
) -> Optional[_MoveRecord]:
    """Push ``ff`` backward across its driving combinational cell.

    Preconditions (checked, returning None when unmet):

    * ``ff`` has exactly one input net, whose comb driver ``c`` feeds only
      ``ff`` (otherwise the move would change other fanout timing);
    * ``ff`` drives a net (it is not a dangling register).

    After the move, ``c`` drives ``ff``'s old output net directly and every
    input of ``c`` is registered by a fresh movable FF placed at ``c``.
    Returns a :class:`_MoveRecord` for :func:`_undo_backward_move`.
    """
    n_in = _single_input_net(netlist, ff)
    if n_in is None:
        return None
    c = n_in.driver
    if c.is_sequential or c is ff:
        return None
    if any(cell is not ff for cell, _pin in n_in.sinks):
        return None
    n_out = netlist.driver_net_of(ff)
    if n_out is None:
        return None

    record = _MoveRecord(ff=ff, c=c, n_in=n_in, n_out=n_out)
    input_nets = netlist.input_nets_of(c)
    for i, net in enumerate(input_nets):
        new_ff = netlist.new_cell(
            f"{ff.name}_bk{i}",
            CellKind.FF,
            delay_ns=ff.delay_ns,
            ffs=max(1, net.width),
            width=net.width,
            movable=True,
        )
        cx, cy = placement.pos[c.name]
        placement.put(new_ff, cx, cy, 0.0)
        record.rewired.append((net, list(net.sinks)))
        net.sinks = [
            (new_ff, pin) if cell is c else (cell, pin) for cell, pin in net.sinks
        ]
        new_net = netlist.connect(
            f"{net.name}_rt", new_ff, [(c, "i")], kind=net.kind, width=net.width
        )
        record.new_ffs.append(new_ff)
        record.new_nets.append(new_net)

    netlist.remove_net(n_in.name)
    n_out.driver = c
    netlist.remove_cell(ff.name)
    return record


def _undo_backward_move(
    netlist: Netlist, placement: Placement, record: _MoveRecord
) -> None:
    """Exactly reverse :func:`_apply_backward_move`."""
    netlist.add_cell(record.ff)
    record.n_out.driver = record.ff
    netlist.add_net(record.n_in)
    for net, old_sinks in record.rewired:
        net.sinks = old_sinks
    for new_net in record.new_nets:
        netlist.remove_net(new_net.name)
    for new_ff in record.new_ffs:
        netlist.remove_cell(new_ff.name)
        placement.remove(new_ff.name)


def retime_movable(
    netlist: Netlist,
    placement: Placement,
    max_moves: int = 64,
) -> Tuple[Netlist, Placement, int]:
    """Greedy accept-if-improves retiming of movable registers.

    One :class:`TimingAnalyzer` persists across trials; each trial applies
    the move to the live netlist, re-propagates only the damaged cone, and
    rolls back if the period did not improve.  Returns ``(netlist,
    placement, moves)`` — the inputs, mutated in place when moves committed.
    """
    analyzer = TimingAnalyzer(netlist, placement)
    moves = 0
    for _ in range(max_moves):
        total, end, _net = analyzer.worst_endpoint()
        period = max(total, MIN_PERIOD_NS)
        if period <= MIN_PERIOD_NS + 1e-9:
            break
        # A backward move helps when the critical path *captures* at a
        # movable register: pushing that register toward the path's start
        # moves combinational delay into the (lighter) next cycle.
        if not end.movable:
            break
        obs.add("physical.retiming_trials", 1)
        record = _apply_backward_move(netlist, placement, end)
        if record is None:
            break
        cone = analyzer.update(
            changed_cells=[record.c.name] + [f.name for f in record.new_ffs],
            changed_nets=[net.name for net, _old in record.rewired]
            + [n.name for n in record.new_nets]
            + [record.n_out.name],
            removed_cells=[record.ff.name],
            removed_nets=[record.n_in.name],
        )
        obs.observe("retiming.cone_size", cone)
        new_total, _cell, _n = analyzer.worst_endpoint()
        if max(new_total, MIN_PERIOD_NS) + 1e-9 < period:
            moves += 1
        else:
            _undo_backward_move(netlist, placement, record)
            analyzer.update(
                changed_cells=[record.c.name, record.ff.name],
                changed_nets=[net.name for net, _old in record.rewired]
                + [record.n_in.name, record.n_out.name],
                removed_cells=[f.name for f in record.new_ffs],
                removed_nets=[n.name for n in record.new_nets],
            )
            break
    obs.add("physical.retiming_moves", moves)
    return netlist, placement, moves
