"""Movable-register retiming.

Broadcast-aware scheduling inserts explicit register stages ("register
modules", §4.1) and the paper notes their main effect is to *enable*
downstream retiming/fanout optimization.  This pass models that: registers
flagged ``movable`` may be pushed backward across their driving
combinational cell (Leiserson–Saxe backward move, restricted to the
single-fanout case), re-balancing the two cycles around the register.

The pass is conservative: a move is committed only when a trial STA run
confirms the period improved.  Trials run on cloned netlists so failures
leave the input untouched.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro import obs
from repro.physical.placement import Placement
from repro.physical.timing import MIN_PERIOD_NS, TimingAnalyzer
from repro.rtl.netlist import Cell, CellKind, Net, Netlist


def clone_netlist(netlist: Netlist) -> Netlist:
    """Deep-copy a netlist preserving cell and net names."""
    copy = Netlist(netlist.name)
    copy.merge(netlist)
    return copy


def clone_placement(placement: Placement) -> Placement:
    copy = Placement()
    copy.pos = dict(placement.pos)
    copy.radius = dict(placement.radius)
    return copy


def _single_input_net(netlist: Netlist, cell: Cell) -> Optional[Net]:
    """The unique net feeding ``cell``, or None."""
    found: Optional[Net] = None
    for net in netlist.nets.values():
        if cell in net.sink_cells():
            if found is not None:
                return None
            found = net
    return found


def _backward_move(netlist: Netlist, placement: Placement, ff: Cell) -> bool:
    """Push ``ff`` backward across its driving combinational cell.

    Preconditions (checked, returning False when unmet):

    * ``ff`` has exactly one input net, whose comb driver ``c`` feeds only
      ``ff`` (otherwise the move would change other fanout timing);
    * ``ff`` drives a net (it is not a dangling register).

    After the move, ``c`` drives ``ff``'s old output net directly and every
    input of ``c`` is registered by a fresh movable FF placed at ``c``.
    """
    n_in = _single_input_net(netlist, ff)
    if n_in is None:
        return False
    c = n_in.driver
    if c.is_sequential or c is ff:
        return False
    if any(cell is not ff for cell, _pin in n_in.sinks):
        return False
    n_out = netlist.driver_net_of(ff)
    if n_out is None:
        return False

    input_nets = [net for net in netlist.nets.values() if c in net.sink_cells()]
    for i, net in enumerate(input_nets):
        new_ff = netlist.new_cell(
            f"{ff.name}_bk{i}",
            CellKind.FF,
            delay_ns=ff.delay_ns,
            ffs=max(1, net.width),
            width=net.width,
            movable=True,
        )
        cx, cy = placement.pos[c.name]
        placement.put(new_ff, cx, cy, 0.0)
        net.sinks = [
            (new_ff, pin) if cell is c else (cell, pin) for cell, pin in net.sinks
        ]
        netlist.connect(f"{net.name}_rt", new_ff, [(c, "i")], kind=net.kind, width=net.width)

    del netlist.nets[n_in.name]
    n_out.driver = c
    del netlist.cells[ff.name]
    return True


def retime_movable(
    netlist: Netlist,
    placement: Placement,
    max_moves: int = 16,
) -> Tuple[Netlist, Placement, int]:
    """Greedy accept-if-improves retiming of movable registers.

    Returns ``(netlist, placement, moves)`` — possibly the inputs unchanged
    when no profitable move exists.
    """
    current_nl, current_pl = netlist, placement
    moves = 0
    for _ in range(max_moves):
        result = TimingAnalyzer(current_nl, current_pl).analyze()
        if result.period_ns <= MIN_PERIOD_NS + 1e-9:
            break
        # A backward move helps when the critical path *captures* at a
        # movable register: pushing that register toward the path's start
        # moves combinational delay into the (lighter) next cycle.
        end = current_nl.cells.get(result.endpoint)
        if end is None or not end.movable:
            break
        obs.add("physical.retiming_trials", 1)
        trial_nl = clone_netlist(current_nl)
        trial_pl = clone_placement(current_pl)
        if not _backward_move(trial_nl, trial_pl, trial_nl.cells[end.name]):
            break
        trial_result = TimingAnalyzer(trial_nl, trial_pl).analyze()
        if trial_result.period_ns + 1e-9 < result.period_ns:
            current_nl, current_pl = trial_nl, trial_pl
            moves += 1
        else:
            break
    obs.add("physical.retiming_moves", moves)
    return current_nl, current_pl, moves
