"""Static timing analysis over a placed netlist.

Paths launch at sequential cell outputs (clock-to-out), propagate through
combinational cells and placed nets (:mod:`repro.physical.netdelay`), and
capture at sequential cell inputs (setup).  The analyzer reports the global
critical path *and* the worst path per :class:`~repro.rtl.netlist.NetKind`
class, which is how we attribute frequency loss to the paper's broadcast
taxonomy (data vs sync vs pipeline-control).

Engine shape (this is the TimerTop/OpenTimer-style incremental design):

* **O(pins) full analysis.**  Propagation walks each cell's maintained
  ``input_pins`` index (:mod:`repro.rtl.netlist`), so every sink pin is
  visited exactly once per run.  The seed implementation re-scanned the full
  ``net.sinks`` list per sink to find that one sink — O(Σ fanout²), ~1M pin
  visits for a 1024-sink enable broadcast
  (:class:`repro.physical.reference.ReferenceTimingAnalyzer` preserves it
  as the differential-testing oracle).
* **Per-(net, sink, pin) delay memo** keyed on the driver/sink placement
  epochs and the net's fanout, so a placement write invalidates exactly the
  entries it touched (:meth:`Placement.put` bumps the cell's epoch).
* **Incremental re-analysis.**  :meth:`TimingAnalyzer.update` re-propagates
  arrival times only through the forward combinational cone of the edited
  cells and refreshes only the endpoint totals those arrivals feed; endpoint
  maxima live in a lazy-deletion heap so the worst path is a peek, not a
  rescan.  Retiming trials ride on this: cost is proportional to the damaged
  cone, not the netlist.

Results are bit-for-bit identical to the reference analyzer: pin iteration
order (and hence strict-inequality tie-breaking) reproduces the seed's
nets-dict scan order, and endpoint maxima tie-break by (net registration
order, sink position) exactly as the seed's first-seen-wins loop did.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from math import log2

from repro import obs
from repro.errors import PhysicalError
from repro.physical.netdelay import (
    CONNECTION_NS,
    FANOUT_LOG_NS,
    NS_PER_TILE,
    sink_delay,
)
from repro.physical.placement import Placement
from repro.rtl.netlist import Cell, CellKind, Net, Netlist, NetKind

#: Control-pin prefixes paying the full sink radius (see netdelay.sink_delay).
_CONTROL_PINS = ("ce", "we", "en")

#: Register setup time (ns).
SETUP_NS = 0.08
#: Fastest period any design can close on the modelled fabric (ns): clocking
#: network, BRAM Fmax limits, etc.  ~740 MHz.
MIN_PERIOD_NS = 1.35

#: Priority for attributing a path that traverses several net kinds.
_CLASS_PRIORITY = {
    NetKind.ENABLE: 5,
    NetKind.SYNC: 4,
    NetKind.STATUS: 3,
    NetKind.MEM: 2,
    NetKind.DATA: 1,
    NetKind.CLOCKLESS: 0,
}


@dataclass
class PathHop:
    """One step of a timing path: arriving at ``cell`` through ``net``."""

    cell: str
    net: str
    incr_ns: float
    arrival_ns: float


@dataclass
class TimingResult:
    """Outcome of one STA run.

    Attributes:
        period_ns: Critical path delay including setup (floored at
            :data:`MIN_PERIOD_NS`).
        fmax_mhz: ``1000 / period_ns``.
        critical_path: Hops from launching register to capturing register.
        path_class: Broadcast class of the critical path.
        class_periods: Worst endpoint delay (ns) attributed to each class.
        startpoint / endpoint: Launching and capturing cell names.
    """

    period_ns: float
    fmax_mhz: float
    raw_period_ns: float = 0.0
    critical_path: List[PathHop] = field(default_factory=list)
    path_class: NetKind = NetKind.DATA
    class_periods: Dict[str, float] = field(default_factory=dict)
    startpoint: str = ""
    endpoint: str = ""

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.fmax_mhz:.0f} MHz (period {self.period_ns:.2f} ns, "
            f"critical class: {self.path_class.value}, "
            f"{self.startpoint} -> {self.endpoint})"
        )


#: (net name, capturing cell name, pin) — identity of one timing endpoint.
_EndpointKey = Tuple[str, str, str]


class TimingAnalyzer:
    """Computes arrival times and critical paths for a placed netlist.

    ``analyze()`` runs a full O(pins) pass.  After edits, ``update()``
    recomputes only the forward cone of the changed cells; ``result()``
    then reports from the maintained state without re-propagating.
    """

    def __init__(self, netlist: Netlist, placement: Placement) -> None:
        self.netlist = netlist
        self.placement = placement
        self._arrival: Dict[str, float] = {}
        self._parent: Dict[str, Tuple[Cell, Net, float]] = {}
        #: endpoint key -> (total delay incl. setup, capturing cell, net).
        self._endpoints: Dict[_EndpointKey, Tuple[float, Cell, Net]] = {}
        #: net name -> endpoint keys it currently contributes.
        self._net_endpoint_keys: Dict[str, Set[_EndpointKey]] = {}
        #: lazy-deletion max-heap of (-total, net seq, sink idx, key).
        self._heap: List[Tuple[float, int, int, _EndpointKey]] = []
        #: (net, sink, pin) -> (driver name, driver epoch, sink epoch,
        #: fanout, delay) — see module docstring.
        self._delay_memo: Dict[
            _EndpointKey, Tuple[str, int, int, int, float]
        ] = {}
        self._analyzed = False

    # -- delay memo ----------------------------------------------------
    def _sink_delay(self, net: Net, cell: Cell, pin: str) -> float:
        key = (net.name, cell.name, pin)
        driver = net.driver
        de = self.placement.epoch_of(driver.name)
        se = self.placement.epoch_of(cell.name)
        fanout = len(net.sinks)
        hit = self._delay_memo.get(key)
        if (
            hit is not None
            and hit[0] == driver.name
            and hit[1] == de
            and hit[2] == se
            and hit[3] == fanout
        ):
            return hit[4]
        value = sink_delay(self.placement, net, cell, pin)
        self._delay_memo[key] = (driver.name, de, se, fanout, value)
        return value

    # -- full analysis -------------------------------------------------
    def analyze(self) -> TimingResult:
        self.propagate()
        return self.result()

    def propagate(self) -> None:
        """Full arrival-time propagation + endpoint rebuild, O(pins).

        The full pass calls :func:`sink_delay` directly instead of through
        the memo — on a one-shot analysis the memo bookkeeping costs more
        than it saves; incremental updates (re-visiting the same pins every
        retiming trial) go through :meth:`_sink_delay` and fill it lazily.
        """
        nl = self.netlist
        placement = self.placement
        arrival: Dict[str, float] = {}
        parent: Dict[str, Tuple[Cell, Net, float]] = {}
        indeg: Dict[str, int] = {}
        comb_succ: Dict[str, List[str]] = {}
        seq: Dict[str, bool] = {}
        input_pins = nl._input_pins
        pins_visited = 0
        comb_cells: List[str] = []
        # Identity tests instead of Cell.is_sequential: LOGIC and DSP are
        # the only combinational kinds, and this loop runs once per cell.
        for name, cell in nl.cells.items():
            kind = cell.kind
            if kind is CellKind.LOGIC or kind is CellKind.DSP:
                seq[name] = False
                comb_succ[name] = []
                comb_cells.append(name)
            else:
                seq[name] = True
                arrival[name] = cell.delay_ns
        for name in comb_cells:
            count = 0
            for net, _pin in input_pins.get(name, ()):
                dname = net._driver.name
                if not seq[dname]:
                    count += 1
                    comb_succ[dname].append(name)
            indeg[name] = count
        # Inlined delay model for the O(pins) hot loop: same expressions in
        # the same order as netdelay.sink_delay/Placement.distance, so the
        # floats are bit-identical (the differential suite pins this down).
        pos = placement.pos
        rad = placement.radius
        max_r = placement.MAX_PIN_RADIUS
        fan_terms: Dict[int, float] = {}
        ready = deque(name for name, d in indeg.items() if d == 0)
        resolved = 0
        while ready:
            name = ready.popleft()
            resolved += 1
            cell = nl.cells[name]
            entries = input_pins.get(name, ())
            if entries:
                bx, by = pos[name]
                rb_base = rad[name]
                rb_capped = rb_base if rb_base < max_r else max_r
            best = 0.0
            best_parent: Optional[Tuple[Cell, Net, float]] = None
            for net, pin in entries:
                pins_visited += 1
                driver = net._driver
                fan_term = fan_terms.get(id(net))
                if fan_term is None:
                    fan = len(net._sinks)
                    fan_term = FANOUT_LOG_NS * log2(fan if fan > 1 else 1)
                    fan_terms[id(net)] = fan_term
                ax, ay = pos[driver.name]
                ra = rad[driver.name]
                if ra > max_r:
                    ra = max_r
                rb = 2.0 * rb_base if pin.startswith(_CONTROL_PINS) else rb_capped
                incr = (
                    CONNECTION_NS
                    + NS_PER_TILE * (abs(ax - bx) + abs(ay - by) + ra + rb)
                    + fan_term
                )
                candidate = arrival[driver.name] + incr
                if candidate > best:
                    best = candidate
                    best_parent = (driver, net, incr)
            arrival[name] = best + cell.delay_ns
            if best_parent is not None:
                parent[name] = best_parent
            for succ in comb_succ[name]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
        if resolved != len(indeg):
            unresolved = sorted(n for n, d in indeg.items() if d > 0)[:5]
            raise PhysicalError(f"combinational cycle at {unresolved}")
        obs.add("timing.pins_visited", pins_visited)
        self._arrival = arrival
        self._parent = parent
        endpoints: Dict[_EndpointKey, Tuple[float, Cell, Net]] = {}
        net_keys: Dict[str, Set[_EndpointKey]] = {}
        heap: List[Tuple[float, int, int, _EndpointKey]] = []
        for net in nl.nets.values():
            if net.kind is NetKind.CLOCKLESS:
                continue
            driver = net._driver
            sinks = net._sinks
            driver_arrival = arrival[driver.name]
            net_name = net.name
            net_seq = net._seq
            keys: Optional[Set[_EndpointKey]] = None
            for idx, (cell, pin) in enumerate(sinks):
                cell_name = cell.name
                if not seq[cell_name]:
                    continue
                if keys is None:
                    keys = set()
                    ax, ay = pos[driver.name]
                    ra = rad[driver.name]
                    if ra > max_r:
                        ra = max_r
                    fan = len(sinks)
                    fan_term = FANOUT_LOG_NS * log2(fan if fan > 1 else 1)
                bx, by = pos[cell_name]
                rb = rad[cell_name]
                if pin.startswith(_CONTROL_PINS):
                    rb = 2.0 * rb
                elif rb > max_r:
                    rb = max_r
                total = (
                    driver_arrival
                    + (
                        CONNECTION_NS
                        + NS_PER_TILE * (abs(ax - bx) + abs(ay - by) + ra + rb)
                        + fan_term
                    )
                    + SETUP_NS
                )
                key = (net_name, cell_name, pin)
                if keys is None:
                    keys = set()
                keys.add(key)
                endpoints[key] = (total, cell, net)
                heap.append((-total, net_seq, idx, key))
            if keys:
                net_keys[net_name] = keys
        heapq.heapify(heap)
        self._endpoints = endpoints
        self._net_endpoint_keys = net_keys
        self._heap = heap
        self._analyzed = True

    # -- incremental re-analysis ---------------------------------------
    def update(
        self,
        changed_cells: Iterable[str],
        changed_nets: Iterable[str] = (),
        removed_cells: Iterable[str] = (),
        removed_nets: Iterable[str] = (),
    ) -> int:
        """Re-propagate through the forward cone of an edit.

        Args:
            changed_cells: Cells whose placement, inputs, or driven nets
                changed (including freshly added cells).
            changed_nets: Nets whose sink lists were rewritten while their
                driver kept its arrival time.
            removed_cells: Cells deleted from the netlist since the last
                analysis (must already be gone).
            removed_nets: Nets deleted since the last analysis.

        Returns the damage-cone size (number of combinational cells
        re-evaluated) so callers can report it.
        """
        if not self._analyzed:
            self.propagate()
            return len(self.netlist.cells)
        nl = self.netlist
        obs.add("timing.incremental_updates", 1)
        for name in removed_nets:
            for key in self._net_endpoint_keys.pop(name, set()):
                self._endpoints.pop(key, None)
        for name in removed_cells:
            self._arrival.pop(name, None)
            self._parent.pop(name, None)
        refresh: Dict[str, Net] = {}
        seeds: Set[str] = set()
        for name in changed_cells:
            cell = nl.cells.get(name)
            if cell is None:
                continue
            if cell.is_sequential:
                self._arrival[name] = cell.delay_ns
                self._parent.pop(name, None)
                # Delays *into* a moved sequential cell change its endpoint
                # totals: refresh every net it captures from.
                for net, _pin in nl.input_pins_of(cell):
                    refresh[net.name] = net
            else:
                seeds.add(name)
            for net in nl.driver_nets_of(cell):
                refresh[net.name] = net
                for sink, _pin in net.sinks:
                    if not sink.is_sequential:
                        seeds.add(sink.name)
        for name in changed_nets:
            net = nl.nets.get(name)
            if net is None:
                continue
            refresh[net.name] = net
            for sink, _pin in net.sinks:
                if not sink.is_sequential:
                    seeds.add(sink.name)
        # Forward combinational cone of the seeds.
        cone = set(seeds)
        stack = list(seeds)
        while stack:
            name = stack.pop()
            for net in nl.driver_nets_of(nl.cells[name]):
                for sink, _pin in net.sinks:
                    if not sink.is_sequential and sink.name not in cone:
                        cone.add(sink.name)
                        stack.append(sink.name)
        # Topological recompute restricted to the cone; arrivals of cells
        # outside the cone are unchanged by construction.
        indeg: Dict[str, int] = {}
        for name in cone:
            count = 0
            for net, _pin in nl._input_pins.get(name, ()):
                driver = net.driver
                if not driver.is_sequential and driver.name in cone:
                    count += 1
            indeg[name] = count
        ready = deque(name for name, d in indeg.items() if d == 0)
        resolved = 0
        pins_visited = 0
        while ready:
            name = ready.popleft()
            resolved += 1
            cell = nl.cells[name]
            best = 0.0
            best_parent: Optional[Tuple[Cell, Net, float]] = None
            for net, pin in nl._input_pins.get(name, ()):
                pins_visited += 1
                incr = self._sink_delay(net, cell, pin)
                candidate = self._arrival[net.driver.name] + incr
                if candidate > best:
                    best = candidate
                    best_parent = (net.driver, net, incr)
            self._arrival[name] = best + cell.delay_ns
            if best_parent is not None:
                self._parent[name] = best_parent
            else:
                self._parent.pop(name, None)
            for net in nl.driver_nets_of(cell):
                refresh[net.name] = net
                for sink, _pin in net.sinks:
                    sname = sink.name
                    if sname in indeg:
                        indeg[sname] -= 1
                        if indeg[sname] == 0:
                            ready.append(sname)
        if resolved != len(indeg):
            unresolved = sorted(n for n, d in indeg.items() if d > 0)[:5]
            raise PhysicalError(f"combinational cycle at {unresolved}")
        obs.add("timing.pins_visited", pins_visited)
        for net in refresh.values():
            if net.name in nl.nets:
                self._refresh_net_endpoints(net)
        self._compact_heap()
        return len(cone)

    # -- endpoint bookkeeping ------------------------------------------
    def _refresh_net_endpoints(self, net: Net) -> None:
        """Recompute the endpoint totals contributed by one net."""
        old_keys = self._net_endpoint_keys.get(net.name)
        new_keys: Set[_EndpointKey] = set()
        if net.kind is not NetKind.CLOCKLESS:
            driver_arrival = self._arrival[net.driver.name]
            for idx, (cell, pin) in enumerate(net.sinks):
                if not cell.is_sequential:
                    continue
                total = driver_arrival + self._sink_delay(net, cell, pin) + SETUP_NS
                key = (net.name, cell.name, pin)
                new_keys.add(key)
                self._endpoints[key] = (total, cell, net)
                heapq.heappush(self._heap, (-total, net._seq, idx, key))
        if old_keys:
            for key in old_keys - new_keys:
                self._endpoints.pop(key, None)
        if new_keys or old_keys:
            self._net_endpoint_keys[net.name] = new_keys

    def _compact_heap(self) -> None:
        """Drop stale lazy-deletion entries once they dominate the heap."""
        if len(self._heap) > 64 and len(self._heap) > 4 * len(self._endpoints):
            self._heap = [
                (-total, net._seq, 0, key)
                for key, (total, _cell, net) in self._endpoints.items()
            ]
            heapq.heapify(self._heap)

    def worst_endpoint(self) -> Tuple[float, Cell, Net]:
        """(total delay, capturing cell, last net) of the worst endpoint.

        A heap peek with lazy deletion of stale entries; ties at the
        maximum resolve to the earliest-registered (net, sink) exactly as
        the reference analyzer's first-seen-wins scan does.
        """
        if not self._analyzed:
            self.propagate()
        while self._heap:
            neg_total, _seq, _idx, key = self._heap[0]
            entry = self._endpoints.get(key)
            if entry is None or entry[0] != -neg_total:
                heapq.heappop(self._heap)
                continue
            return entry
        raise PhysicalError(
            f"netlist {self.netlist.name!r} has no timing endpoints"
        )

    def worst_period_ns(self) -> float:
        """Critical period (ns), floored at :data:`MIN_PERIOD_NS`."""
        return max(self.worst_endpoint()[0], MIN_PERIOD_NS)

    # -- reporting ------------------------------------------------------
    def result(self) -> TimingResult:
        """Build a :class:`TimingResult` from the current timing state."""
        if not self._analyzed:
            self.propagate()
        total, sink, net = self.worst_endpoint()
        memo: Dict[str, Optional[NetKind]] = {}
        kind = self._classify(net, memo)
        class_periods: Dict[str, float] = {}
        for e_total, _e_cell, e_net in self._endpoints.values():
            key = self._classify(e_net, memo).value
            if e_total > class_periods.get(key, 0.0):
                class_periods[key] = e_total
        hops, startpoint = self._trace(sink, net)
        period = max(total, MIN_PERIOD_NS)
        return TimingResult(
            period_ns=period,
            fmax_mhz=1000.0 / period,
            raw_period_ns=total,
            critical_path=hops,
            path_class=kind,
            class_periods=class_periods,
            startpoint=startpoint,
            endpoint=sink.name,
        )

    def _dominant(
        self, start: Cell, memo: Dict[str, Optional[NetKind]]
    ) -> Optional[NetKind]:
        """Dominant net kind along the parent chain above ``start``.

        Memoized per ``result()`` call, so classifying every endpoint costs
        one walk over the union of their critical cones instead of one walk
        per endpoint.
        """
        limit = len(self.netlist.cells) + 1
        chain: List[str] = []
        cursor = start
        while cursor.name in self._parent and cursor.name not in memo:
            chain.append(cursor.name)
            cursor = self._parent[cursor.name][0]
            if len(chain) > limit:
                raise PhysicalError(
                    f"timing classification walk exceeded {limit} cells at "
                    f"{cursor.name!r}: parent chain is corrupt"
                )
        tail = memo.get(cursor.name)
        for name in reversed(chain):
            kind = self._parent[name][1].kind
            if tail is not None and _CLASS_PRIORITY[tail] > _CLASS_PRIORITY[kind]:
                kind = tail
            memo[name] = kind
            tail = kind
        return tail

    def _classify(
        self, last_net: Net, memo: Dict[str, Optional[NetKind]]
    ) -> NetKind:
        """Dominant net kind along the critical cone into ``last_net``."""
        best = last_net.kind
        dominant = self._dominant(last_net.driver, memo)
        if dominant is not None and _CLASS_PRIORITY[dominant] > _CLASS_PRIORITY[best]:
            best = dominant
        return best

    def _trace(self, endpoint: Cell, last_net: Net) -> Tuple[List[PathHop], str]:
        """Reconstruct the critical path ending at ``endpoint``.

        Walks the parent map (which records the argmax input of every
        combinational cell) instead of re-running the argmax per hop.
        """
        hops: List[PathHop] = []
        end_pin = next((p for c, p in last_net.sinks if c is endpoint), "")
        incr = self._sink_delay(last_net, endpoint, end_pin)
        hops.append(
            PathHop(
                cell=endpoint.name,
                net=last_net.name,
                incr_ns=incr + SETUP_NS,
                arrival_ns=self._arrival[last_net.driver.name] + incr + SETUP_NS,
            )
        )
        cursor = last_net.driver
        limit = len(self.netlist.cells) + 1
        steps = 0
        while not cursor.is_sequential:
            entry = self._parent.get(cursor.name)
            if entry is None:
                break
            driver, net, step = entry
            hops.append(
                PathHop(
                    cell=cursor.name,
                    net=net.name,
                    incr_ns=step + cursor.delay_ns,
                    arrival_ns=self._arrival[cursor.name],
                )
            )
            cursor = driver
            steps += 1
            if steps > limit:
                raise PhysicalError(
                    f"critical-path trace exceeded {limit} hops at "
                    f"{cursor.name!r}: parent chain is corrupt"
                )
        hops.reverse()
        return hops, cursor.name
