"""Physical design model: devices, placement, net delay, replication, STA.

This package is the reproduction's stand-in for Vivado place & route plus
silicon measurement.  It is deterministic (seeded) and deliberately simple,
but it captures the two mechanisms the paper's analysis rests on:

1. net delay grows with the *spatial spread* of a net's sinks and with its
   *fanout* — so broadcast structures are slow;
2. the backend can replicate registers to cut the fanout term but can never
   remove the spread term, and cannot touch single-cycle combinational
   control paths at all — so behaviour-level (HLS) fixes are required.
"""

from repro.physical.device import DEVICES, Device
from repro.physical.fabric import Fabric
from repro.physical.placement import Placement, Placer
from repro.physical.reference import ReferenceTimingAnalyzer
from repro.physical.replication import ReplicationConfig, replicate_high_fanout
from repro.physical.timing import TimingAnalyzer, TimingResult

__all__ = [
    "Device",
    "DEVICES",
    "Fabric",
    "Placer",
    "Placement",
    "ReferenceTimingAnalyzer",
    "ReplicationConfig",
    "replicate_high_fanout",
    "TimingAnalyzer",
    "TimingResult",
]
