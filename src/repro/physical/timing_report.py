"""Vivado-style timing report emission and parsing.

The paper's methodology treats vendor *reports* as the tool interface
(schedule reports in §4.1); we extend the same discipline to timing: STA
results render to a stable text format that external tooling — or our own
tests — can parse back without touching Python objects.

Format::

    == Timing Report: <design> ==
    Requirement: none | <ns> ns
    Data Path Delay: 4.210 ns (fmax 237.5 MHz)
    Path Class: enable
    Startpoint: <cell>
    Endpoint:   <cell>
      incr 0.450  arrival 0.450  cell <name>  net <name>
      ...
    Class Summary:
      enable 4.210
      data   3.102
"""

from __future__ import annotations

import re
from typing import Optional

from repro.errors import PhysicalError
from repro.physical.timing import PathHop, TimingResult
from repro.rtl.netlist import NetKind

_HEADER_RE = re.compile(r"== Timing Report: (?P<design>.*) ==")
_DELAY_RE = re.compile(
    r"Data Path Delay: (?P<delay>[\d.]+) ns \(fmax (?P<fmax>[\d.]+) MHz\)"
)
_CLASS_RE = re.compile(r"Path Class: (?P<cls>\w+)")
_POINT_RE = re.compile(r"(?P<which>Startpoint|Endpoint):\s+(?P<cell>\S+)")
_HOP_RE = re.compile(
    r"^\s+incr (?P<incr>[\d.]+)\s+arrival (?P<arrival>[\d.]+)"
    r"\s+cell (?P<cell>\S+)\s+net (?P<net>\S+)$"
)
_SUMMARY_RE = re.compile(r"^\s+(?P<cls>\w+)\s+(?P<delay>[\d.]+)$")


def emit_timing_report(
    result: TimingResult,
    design: str = "design",
    requirement_ns: Optional[float] = None,
) -> str:
    """Serialize a :class:`TimingResult` to report text."""
    lines = [
        f"== Timing Report: {design} ==",
        f"Requirement: {'none' if requirement_ns is None else f'{requirement_ns:.3f} ns'}",
        f"Data Path Delay: {result.raw_period_ns:.3f} ns (fmax {result.fmax_mhz:.1f} MHz)",
        f"Path Class: {result.path_class.value}",
        f"Startpoint: {result.startpoint}",
        f"Endpoint:   {result.endpoint}",
    ]
    for hop in result.critical_path:
        lines.append(
            f"  incr {hop.incr_ns:.3f}  arrival {hop.arrival_ns:.3f}"
            f"  cell {hop.cell}  net {hop.net}"
        )
    lines.append("Class Summary:")
    for key in sorted(result.class_periods):
        lines.append(f"  {key} {result.class_periods[key]:.3f}")
    if requirement_ns is not None:
        slack = requirement_ns - result.raw_period_ns
        lines.append(f"Slack: {slack:+.3f} ns ({'MET' if slack >= 0 else 'VIOLATED'})")
    return "\n".join(lines) + "\n"


def parse_timing_report(text: str) -> TimingResult:
    """Reconstruct a :class:`TimingResult` from report text.

    Round-trips everything except the floor applied to ``period_ns`` (the
    parsed period is re-floored identically, so fmax matches).
    """
    header = _HEADER_RE.search(text)
    delay = _DELAY_RE.search(text)
    cls = _CLASS_RE.search(text)
    if header is None or delay is None or cls is None:
        raise PhysicalError("unparseable timing report")
    from repro.physical.timing import MIN_PERIOD_NS

    raw = float(delay.group("delay"))
    period = max(raw, MIN_PERIOD_NS)
    result = TimingResult(
        period_ns=period,
        fmax_mhz=1000.0 / period,
        raw_period_ns=raw,
        path_class=NetKind(cls.group("cls")),
    )
    for match in _POINT_RE.finditer(text):
        if match.group("which") == "Startpoint":
            result.startpoint = match.group("cell")
        else:
            result.endpoint = match.group("cell")
    in_summary = False
    for line in text.splitlines():
        if line.startswith("Class Summary:"):
            in_summary = True
            continue
        hop = _HOP_RE.match(line)
        if hop and not in_summary:
            result.critical_path.append(
                PathHop(
                    cell=hop.group("cell"),
                    net=hop.group("net"),
                    incr_ns=float(hop.group("incr")),
                    arrival_ns=float(hop.group("arrival")),
                )
            )
            continue
        if in_summary:
            summary = _SUMMARY_RE.match(line)
            if summary:
                result.class_periods[summary.group("cls")] = float(
                    summary.group("delay")
                )
    return result
