"""Deterministic connectivity-driven placement.

The placer processes cells in BFS order over the netlist from an anchor
(controller or port), placing each cell at the nearest free capacity to the
centroid of its already-placed neighbors, with a small seeded jitter.  This
is nowhere near an analytic placer, but it produces the property that
matters for the paper's experiments: *the sinks of a broadcast net occupy an
area proportional to their total resource demand*, so broadcast spread — and
hence wire delay — grows with broadcast factor and buffer size.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.errors import PlacementError
from repro.rtl.netlist import Cell, CellKind, Netlist
from repro.physical.fabric import BRAM_COL, CLB, DSP_COL, Fabric, Occupancy

#: Jitter amplitude in tiles — the "random noise caused by the heuristic
#: optimization in downstream processes" that §4.1's smoothing suppresses.
JITTER_TILES = 1.5


def _col_kind_for(cell: Cell) -> str:
    if cell.kind is CellKind.BRAM:
        return BRAM_COL
    if cell.kind is CellKind.DSP:
        return DSP_COL
    return CLB


def _demand_of(cell: Cell) -> int:
    """Capacity units the cell needs in its column kind."""
    if cell.kind is CellKind.BRAM:
        return max(1, cell.brams)
    if cell.kind is CellKind.DSP:
        return max(1, cell.dsps)
    return max(1, cell.luts + math.ceil(cell.ffs / 2))


class Placement:
    """Result of placement: a position and radius per cell.

    Every write through :meth:`put` (or :meth:`remove`) bumps the written
    cell's *epoch*; the timing engine's per-(net, sink, pin) delay memo keys
    on driver/sink epochs, so a placement edit invalidates exactly the memo
    entries it touched and nothing else.
    """

    def __init__(self) -> None:
        self.pos: Dict[str, Tuple[float, float]] = {}
        self.radius: Dict[str, float] = {}
        self._epoch: Dict[str, int] = {}

    #: Cap on a cell's pin-access radius (tiles).  Large blocks expose their
    #: pins near the edge facing the neighbor, so intra-block distance does
    #: not grow without bound with block area.
    MAX_PIN_RADIUS = 6.0

    def distance(self, a: Cell, b: Cell, control_sink: bool = False) -> float:
        """Manhattan distance between two cells' centroids plus their
        internal pin-access radii.

        Data pins of a large block sit near its edge, so their radius
        contribution is capped.  ``control_sink`` marks broadcast control
        pins (clock enables, write enables) that must reach registers
        *throughout* the sink block's area — those pay the full (doubled)
        radius, which is why enable broadcasts over big modules are slow.
        """
        ax, ay = self.pos[a.name]
        bx, by = self.pos[b.name]
        ra = min(self.radius[a.name], self.MAX_PIN_RADIUS)
        if control_sink:
            rb = 2.0 * self.radius[b.name]
        else:
            rb = min(self.radius[b.name], self.MAX_PIN_RADIUS)
        return abs(ax - bx) + abs(ay - by) + ra + rb

    def bounding_box(self, cells: List[Cell]) -> Tuple[float, float, float, float]:
        xs = [self.pos[c.name][0] for c in cells]
        ys = [self.pos[c.name][1] for c in cells]
        return min(xs), min(ys), max(xs), max(ys)

    def spread(self, cells: List[Cell]) -> float:
        """Half-perimeter of the bounding box of ``cells`` (HPWL-style)."""
        if not cells:
            return 0.0
        x0, y0, x1, y1 = self.bounding_box(cells)
        return (x1 - x0) + (y1 - y0)

    def put(self, cell: Cell, x: float, y: float, radius: float = 0.0) -> None:
        self.pos[cell.name] = (x, y)
        self.radius[cell.name] = radius
        self._epoch[cell.name] = self._epoch.get(cell.name, 0) + 1

    def remove(self, name: str) -> None:
        """Forget a cell's placement (epoch keeps rising: a later re-``put``
        under the same name never aliases stale memo entries)."""
        self.pos.pop(name, None)
        self.radius.pop(name, None)
        self._epoch[name] = self._epoch.get(name, 0) + 1

    def epoch_of(self, name: str) -> int:
        """Monotonic write counter for one cell (0 = never placed)."""
        return self._epoch.get(name, 0)


class Placer:
    """Greedy BFS placer over a :class:`Fabric`."""

    #: Cells demanding more than this many tiles are deferred (see place()).
    BIG_CELL_TILES = 64

    def __init__(self, fabric: Fabric, seed: int = 2020) -> None:
        self.fabric = fabric
        self.seed = seed

    # ------------------------------------------------------------------
    def place(
        self,
        netlist: Netlist,
        anchor: Optional[str] = None,
        refine_passes: int = 3,
    ) -> Placement:
        """Place every cell of ``netlist``; returns a :class:`Placement`.

        ``anchor`` names the cell to pin near the die edge (defaults to the
        first PORT cell, then the first CTRL cell, then the first cell).

        Three phases:

        1. **memory floorplan** — BRAM cells are pre-placed in declaration
           order, filling memory columns outward from the center, so bank
           index k and bank k+1 are physical neighbors (banked memories are
           laid out this way on purpose by real flows);
        2. **greedy DFS** — remaining cells placed at the centroid of their
           already-placed neighbors, depth-first, huge macros last;
        3. **refinement** — optional ``refine_passes`` sweeps re-seat
           small cells toward their neighborhood centroid.  Off by default:
           measurements show the DFS placement is already locally tight and
           single-cell re-seating causes displacement cascades (median net
           length regresses ~6x), so it is kept only for experimentation.
        """
        rng = random.Random(self.seed)
        occupancy = Occupancy(self.fabric)
        placement = Placement()
        if not netlist.cells:
            return placement
        self._chunks: Dict[str, List[Tuple[int, int, int]]] = {}

        neighbors = self._adjacency(netlist)
        cx, cy = self.fabric.center

        # Phase 1: memory floorplan — fill BRAM columns nearest the center
        # first, column-major, so bank k and bank k+1 are vertical
        # neighbors and index-contiguous bank groups are physically local.
        brams = [c for c in netlist.cells.values() if c.kind is CellKind.BRAM]
        with obs.span("memory-floorplan", brams=len(brams)):
            bram_cols = [
                x
                for x in range(self.fabric.cols)
                if self.fabric.col_type(x) == BRAM_COL
            ]
            # Serpentine walk (left-to-right columns, alternating row
            # direction): consecutive bank indices are always physically
            # adjacent, with no discontinuity anywhere.  Logic that talks
            # to the banks is pulled toward them by the DFS phase, so an
            # off-center start costs nothing.
            slots = (
                (x, y if ci % 2 == 0 else self.fabric.rows - 1 - y)
                for ci, x in enumerate(bram_cols)
                for y in range(self.fabric.rows)
            )
            for cell in brams:
                demand = _demand_of(cell)
                chunks: List[Tuple[int, int, int]] = []
                while demand > 0:
                    try:
                        x, y = next(slots)
                    except StopIteration:
                        raise PlacementError(
                            f"device {self.fabric.device.name!r} out of bram "
                            f"capacity placing {cell.name!r}"
                        ) from None
                    taken = occupancy.take(x, y, demand)
                    if taken:
                        chunks.append((x, y, taken))
                        demand -= taken
                self._chunks[cell.name] = chunks
                total = sum(u for _x, _y, u in chunks)
                px = sum(x * u for x, _y, u in chunks) / total
                py = sum(y * u for _x, y, u in chunks) / total
                placement.put(cell, px, py, 0.0)
            obs.add("placement.cells_placed", len(brams))

        # Phase 2: greedy DFS.  I/O pads go after the core logic (they pin
        # to the die edge and must not drag the datapath there), macros go
        # last (they fill space around the packed fine-grained logic).
        with obs.span("greedy-place") as sp:
            order = self._bfs_order(netlist, neighbors, anchor)
            order = [c for c in order if c.kind is not CellKind.BRAM]
            small = [
                c
                for c in order
                if _demand_of(c) <= self.BIG_CELL_TILES * 64
                and c.kind is not CellKind.PORT
            ]
            ports = [c for c in order if c.kind is CellKind.PORT]
            big = [c for c in order if _demand_of(c) > self.BIG_CELL_TILES * 64]
            for cell in small + ports + big:
                desired = self._desired_position(
                    cell, neighbors, placement, rng, (cx, cy)
                )
                self._allocate_and_put(cell, desired, occupancy, placement)
            sp.set("cells", len(order))
            obs.add("placement.cells_placed", len(order))

        # Phase 3: refinement.
        with obs.span("refine", passes=max(0, refine_passes)) as sp:
            moved = 0
            for _ in range(max(0, refine_passes)):
                moved += self._refine(small, neighbors, occupancy, placement)
            sp.set("moves", moved)
            obs.add("placement.refine_moves", moved)
        return placement

    def _refine(
        self,
        cells: List[Cell],
        neighbors: Dict[str, List[str]],
        occupancy: Occupancy,
        placement: Placement,
    ) -> int:
        """Re-seat outlier cells, committing only strict improvements.

        A move is accepted only when it reduces the cell's worst distance
        to its neighbors by a clear margin — this keeps each pass monotone
        per cell and avoids the displacement cascades a naive
        move-to-centroid sweep causes.
        """

        def worst(cell_name: str, x: float, y: float) -> float:
            return max(
                abs(x - placement.pos[n][0]) + abs(y - placement.pos[n][1])
                for n in neighbors[cell_name]
                if n in placement.pos
            )

        moved = 0
        for cell in cells:
            if cell.kind is CellKind.PORT:
                continue
            placed = [n for n in neighbors[cell.name] if n in placement.pos]
            if not placed:
                continue
            x, y = placement.pos[cell.name]
            old_cost = worst(cell.name, x, y)
            if old_cost <= 8.0:
                continue
            ix = sum(placement.pos[n][0] for n in placed) / len(placed)
            iy = sum(placement.pos[n][1] for n in placed) / len(placed)
            old_chunks = self._chunks.get(cell.name, [])
            old_radius = placement.radius[cell.name]
            occupancy.release(old_chunks)
            self._allocate_and_put(cell, (ix, iy), occupancy, placement)
            nx, ny = placement.pos[cell.name]
            if worst(cell.name, nx, ny) < old_cost - 2.0:
                moved += 1
            else:
                # Revert: free the trial spot, retake the original.
                occupancy.release(self._chunks[cell.name])
                for cx, cy, units in old_chunks:
                    occupancy.take(cx, cy, units)
                self._chunks[cell.name] = old_chunks
                placement.put(cell, x, y, old_radius)
        return moved

    # ------------------------------------------------------------------
    @staticmethod
    def _adjacency(netlist: Netlist) -> Dict[str, List[str]]:
        adj: Dict[str, List[str]] = {name: [] for name in netlist.cells}
        for net in netlist.nets.values():
            driver = net.driver.name
            for sink, _pin in net.sinks:
                if sink.name != driver:
                    adj[driver].append(sink.name)
                    adj[sink.name].append(driver)
        return adj

    def _bfs_order(
        self,
        netlist: Netlist,
        neighbors: Dict[str, List[str]],
        anchor: Optional[str],
    ) -> List[Cell]:
        """Depth-first traversal order from the anchor.

        Depth-first (not breadth-first) matters for quality: it follows one
        dependence chain — one unrolled copy, one reduction subtree — to
        completion before starting the next, so logically-cohesive cones
        get physically contiguous placements.  Breadth-first would lay the
        design out level-major and stretch every intra-copy net across the
        full unroll width.
        """
        if anchor is None:
            ports = netlist.cells_of_kind(CellKind.PORT)
            ctrls = netlist.cells_of_kind(CellKind.CTRL)
            anchor = (ports or ctrls or list(netlist.cells.values()))[0].name
        seen = {anchor}
        stack = [anchor]
        order: List[Cell] = []
        remaining = list(netlist.cells)
        while stack or len(order) < len(netlist.cells):
            if not stack:
                # Disconnected component: restart from the first unseen
                # cell in declaration order.
                nxt = next(name for name in remaining if name not in seen)
                seen.add(nxt)
                stack.append(nxt)
            name = stack.pop()
            order.append(netlist.cells[name])
            # Reversed so the first-declared neighbor is visited first.
            for nbr in reversed(neighbors[name]):
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        return order

    def _desired_position(
        self,
        cell: Cell,
        neighbors: Dict[str, List[str]],
        placement: Placement,
        rng: random.Random,
        fallback: Tuple[int, int],
    ) -> Tuple[float, float]:
        placed = [n for n in neighbors[cell.name] if n in placement.pos]
        if placed:
            x = sum(placement.pos[n][0] for n in placed) / len(placed)
            y = sum(placement.pos[n][1] for n in placed) / len(placed)
        else:
            x, y = fallback
        x += rng.uniform(-JITTER_TILES, JITTER_TILES)
        y += rng.uniform(-JITTER_TILES, JITTER_TILES)
        return x, y

    def _allocate_and_put(
        self,
        cell: Cell,
        desired: Tuple[float, float],
        occupancy: Occupancy,
        placement: Placement,
    ) -> None:
        col_kind = _col_kind_for(cell)
        demand = _demand_of(cell)
        dx, dy = desired
        if cell.kind is CellKind.PORT:
            # Ports pin to the die's left edge at the requested row.
            dx = 0.0
        chunks = occupancy.allocate(
            max(0, min(self.fabric.cols - 1, int(round(dx)))),
            max(0, min(self.fabric.rows - 1, int(round(dy)))),
            col_kind,
            demand,
        )
        self._chunks[cell.name] = chunks
        total = sum(units for _x, _y, units in chunks)
        x = sum(cx * units for cx, _y, units in chunks) / total
        y = sum(cy * units for _x, cy, units in chunks) / total
        if len(chunks) == 1:
            radius = 0.0
        else:
            xs = [cx for cx, _y, _u in chunks]
            ys = [cy for _x, cy, _u in chunks]
            radius = ((max(xs) - min(xs)) + (max(ys) - min(ys))) / 4.0
        placement.put(cell, x, y, radius)
