"""Deterministic connectivity-driven placement.

The placer processes cells in BFS order over the netlist from an anchor
(controller or port), placing each cell at the nearest free capacity to the
centroid of its already-placed neighbors, with a small seeded jitter.  This
is nowhere near an analytic placer, but it produces the property that
matters for the paper's experiments: *the sinks of a broadcast net occupy an
area proportional to their total resource demand*, so broadcast spread — and
hence wire delay — grows with broadcast factor and buffer size.

Two performance mechanisms ride on top of the greedy algorithm without
changing any placement decision:

* **Trajectory reuse** (incremental sweeps): :meth:`Placer.place` can
  record its greedy phase as a trajectory — per cell, the desired position
  and the exact tile chunks allocated — and a later run over a *similar*
  netlist replays matching prefix steps by re-taking the recorded chunks
  directly, skipping the spiral free-capacity search.  The first
  mismatching step falls back to fresh allocation for the rest of the
  order, so reuse is bit-identical by construction (either the whole
  prefix matches — same occupancy state by induction — or it isn't used).
* **Linear refinement**: the outlier cutoff scales with the design's
  packed dimension (:data:`REFINE_OUTLIER_REL`) so the attempted-trial
  count stays proportional to cell count, and the refine pass caches each
  cell's neighborhood summary (four corner maxima that evaluate the worst
  Manhattan neighbor distance in O(1), plus centroid sums) with lazy
  invalidation, skipping trials whose inputs provably haven't changed
  since an identical failed trial.  See :class:`_RefineContext`.
"""

from __future__ import annotations

import math
import random
import weakref
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.errors import PlacementError
from repro.rtl.netlist import Cell, CellKind, Netlist
from repro.physical.fabric import BRAM_COL, CLB, DSP_COL, Fabric, Occupancy

#: Jitter amplitude in tiles — the "random noise caused by the heuristic
#: optimization in downstream processes" that §4.1's smoothing suppresses.
JITTER_TILES = 1.5

#: Refinement outlier criterion: a cell is re-seated only when its worst
#: neighbor distance exceeds ``max(REFINE_OUTLIER_MIN,
#: REFINE_OUTLIER_REL * sqrt(total tile demand))``.  The relative term is
#: what keeps refinement linear: in a packed 2D blob, typical distances
#: grow with sqrt(area), so an *absolute* cutoff saturates — past a die
#: diameter of a few tiles every sink of every broadcast net qualifies,
#: and the trial count (each an O(1)-amortized but ~50 µs occupancy
#: probe) grows quadratically through exactly the broadcast-factor range
#: the paper sweeps.  Scaling the cutoff with the blob's linear dimension
#: keeps the outlier *fraction* roughly constant (~5-8 % measured on
#: genome at unroll 4-64), so trials — and refine time — stay
#: proportional to design size.  It is also the truer reading of
#: "outlier": a sink 12 tiles from a hub whose fanout cone spans 30 tiles
#: is seated fine; the same distance in a 10-tile design is not.
REFINE_OUTLIER_MIN = 8.0
REFINE_OUTLIER_REL = 0.15


def _col_kind_for(cell: Cell) -> str:
    if cell.kind is CellKind.BRAM:
        return BRAM_COL
    if cell.kind is CellKind.DSP:
        return DSP_COL
    return CLB


def _demand_of(cell: Cell) -> int:
    """Capacity units the cell needs in its column kind."""
    if cell.kind is CellKind.BRAM:
        return max(1, cell.brams)
    if cell.kind is CellKind.DSP:
        return max(1, cell.dsps)
    return max(1, cell.luts + math.ceil(cell.ffs / 2))


class Placement:
    """Result of placement: a position and radius per cell.

    Every write through :meth:`put` (or :meth:`remove`) bumps the written
    cell's *epoch*; the timing engine's per-(net, sink, pin) delay memo keys
    on driver/sink epochs, so a placement edit invalidates exactly the memo
    entries it touched and nothing else.
    """

    def __init__(self) -> None:
        self.pos: Dict[str, Tuple[float, float]] = {}
        self.radius: Dict[str, float] = {}
        self._epoch: Dict[str, int] = {}

    #: Cap on a cell's pin-access radius (tiles).  Large blocks expose their
    #: pins near the edge facing the neighbor, so intra-block distance does
    #: not grow without bound with block area.
    MAX_PIN_RADIUS = 6.0

    def distance(self, a: Cell, b: Cell, control_sink: bool = False) -> float:
        """Manhattan distance between two cells' centroids plus their
        internal pin-access radii.

        Data pins of a large block sit near its edge, so their radius
        contribution is capped.  ``control_sink`` marks broadcast control
        pins (clock enables, write enables) that must reach registers
        *throughout* the sink block's area — those pay the full (doubled)
        radius, which is why enable broadcasts over big modules are slow.
        """
        ax, ay = self.pos[a.name]
        bx, by = self.pos[b.name]
        ra = min(self.radius[a.name], self.MAX_PIN_RADIUS)
        if control_sink:
            rb = 2.0 * self.radius[b.name]
        else:
            rb = min(self.radius[b.name], self.MAX_PIN_RADIUS)
        return abs(ax - bx) + abs(ay - by) + ra + rb

    def bounding_box(self, cells: List[Cell]) -> Tuple[float, float, float, float]:
        xs = [self.pos[c.name][0] for c in cells]
        ys = [self.pos[c.name][1] for c in cells]
        return min(xs), min(ys), max(xs), max(ys)

    def spread(self, cells: List[Cell]) -> float:
        """Half-perimeter of the bounding box of ``cells`` (HPWL-style)."""
        if not cells:
            return 0.0
        x0, y0, x1, y1 = self.bounding_box(cells)
        return (x1 - x0) + (y1 - y0)

    def put(self, cell: Cell, x: float, y: float, radius: float = 0.0) -> None:
        self.pos[cell.name] = (x, y)
        self.radius[cell.name] = radius
        self._epoch[cell.name] = self._epoch.get(cell.name, 0) + 1

    def remove(self, name: str) -> None:
        """Forget a cell's placement (epoch keeps rising: a later re-``put``
        under the same name never aliases stale memo entries)."""
        self.pos.pop(name, None)
        self.radius.pop(name, None)
        self._epoch[name] = self._epoch.get(name, 0) + 1

    def epoch_of(self, name: str) -> int:
        """Monotonic write counter for one cell (0 = never placed)."""
        return self._epoch.get(name, 0)


class _RefineState:
    """Cached neighborhood summary of one cell for O(1) cost evaluation.

    ``|x - px| + |y - py|`` equals the max of the four signed corner sums,
    so the worst neighbor distance from any point (x, y) is::

        max(x + y + m1,  x - y + m2,  -x + y + m3,  -x - y + m4)

    with ``m1 = max(-px - py)``, ``m2 = max(-px + py)``,
    ``m3 = max(px - py)``, ``m4 = max(px + py)`` over the placed neighbors.
    ``sx``/``sy``/``count`` accumulate the centroid in neighbor-list order
    (the same float summation order the naive implementation uses).
    """

    __slots__ = ("m1", "m2", "m3", "m4", "sx", "sy", "count")

    def __init__(self) -> None:
        self.m1 = self.m2 = self.m3 = self.m4 = -math.inf
        self.sx = 0.0
        self.sy = 0.0
        self.count = 0


class _RefineContext:
    """Cross-pass refine state: summaries, invalidation, failure memo.

    ``dirty`` holds cells whose cached :class:`_RefineState` is stale
    because a neighbor moved.  ``fail_guard`` remembers each failed trial
    move as ``(box, own_tiles)`` — the Chebyshev search box its allocation
    examined plus the tiles of the cell's own chunks.  A failed trial fully
    reverts (state-neutral), so the same trial re-run later *must* fail
    again unless something it read changed: the cell's neighborhood (→
    ``dirty`` drops the guard) or the occupancy inside the recorded
    region (→ an accepted move whose released/taken tiles touch the region
    drops the guard).  Everything still guarded is skipped — this is what
    keeps a refine pass linear instead of re-attempting every stuck
    outlier against O(search area) occupancy scans each pass.
    """

    __slots__ = ("states", "dirty", "fail_guard")

    def __init__(self) -> None:
        self.states: Dict[str, _RefineState] = {}
        self.dirty: set = set()
        #: name -> ((cx, cy, radius), frozenset of own-chunk tiles)
        self.fail_guard: Dict[str, Tuple[Tuple[int, int, int], frozenset]] = {}

    def invalidate_tiles(self, tiles) -> None:
        """Drop every fail guard whose recorded region a tile touches."""
        if not self.fail_guard:
            return
        stale = []
        for name, (box, own) in self.fail_guard.items():
            cx, cy, radius = box
            for x, y in tiles:
                if (x, y) in own or (
                    abs(x - cx) <= radius and abs(y - cy) <= radius
                ):
                    stale.append(name)
                    break
        for name in stale:
            del self.fail_guard[name]


class Placer:
    """Greedy BFS placer over a :class:`Fabric`."""

    #: Cells demanding more than this many tiles are deferred (see place()).
    BIG_CELL_TILES = 64

    #: Refine implementation: ``"fast"`` (cached summaries + skip logic) or
    #: ``"reference"`` (full recomputation every trial).  Both produce
    #: bit-identical placements; the reference exists so tests can pin the
    #: fast path's accepted-move behavior.
    refine_engine = "fast"

    #: Deduped adjacency per netlist, revalidated by (cells, nets) counts —
    #: sound for this codebase because every netlist mutation (replication,
    #: retiming, emission) adds or removes cells/nets, never rewires while
    #: keeping both counts equal.
    _ADJACENCY_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    def __init__(self, fabric: Fabric, seed: int = 2020) -> None:
        self.fabric = fabric
        self.seed = seed
        #: Greedy-phase trajectory of the last :meth:`place` call with
        #: ``record=True`` (see :meth:`place`).
        self.trajectory: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    def place(
        self,
        netlist: Netlist,
        anchor: Optional[str] = None,
        refine_passes: int = 3,
        reuse: Optional[Dict[str, Any]] = None,
        record: bool = False,
    ) -> Placement:
        """Place every cell of ``netlist``; returns a :class:`Placement`.

        ``anchor`` names the cell to pin near the die edge (defaults to the
        first PORT cell, then the first CTRL cell, then the first cell).

        Three phases:

        1. **memory floorplan** — BRAM cells are pre-placed in declaration
           order, filling memory columns outward from the center, so bank
           index k and bank k+1 are physical neighbors (banked memories are
           laid out this way on purpose by real flows);
        2. **greedy DFS** — remaining cells placed at the centroid of their
           already-placed neighbors, depth-first, huge macros last;
        3. **refinement** — ``refine_passes`` sweeps re-seat outlier
           cells toward their neighborhood centroid.  Only cells whose
           worst neighbor distance exceeds a scale-relative cutoff are
           tried (see :data:`REFINE_OUTLIER_REL`), and only strict
           improvements commit — the DFS placement is already locally
           tight, and unconditional re-seating causes displacement
           cascades.

        ``reuse`` is a trajectory recorded by a previous ``record=True``
        call (:attr:`trajectory`): greedy steps whose (cell, demand, column
        kind, desired position) match the recorded step re-take the
        recorded chunks directly instead of searching the occupancy — exact
        by induction, since a fully-matching prefix implies an identical
        occupancy state.  The first mismatch disables reuse for the rest of
        the run.
        """
        rng = random.Random(self.seed)
        occupancy = Occupancy(self.fabric)
        placement = Placement()
        self.trajectory = None
        if not netlist.cells:
            return placement
        self._chunks: Dict[str, List[Tuple[int, int, int]]] = {}

        neighbors = self._adjacency(netlist)
        cx, cy = self.fabric.center

        # Phase 1: memory floorplan — fill BRAM columns nearest the center
        # first, column-major, so bank k and bank k+1 are vertical
        # neighbors and index-contiguous bank groups are physically local.
        brams = [c for c in netlist.cells.values() if c.kind is CellKind.BRAM]
        with obs.span("memory-floorplan", brams=len(brams)):
            bram_cols = [
                x
                for x in range(self.fabric.cols)
                if self.fabric.col_type(x) == BRAM_COL
            ]
            # Serpentine walk (left-to-right columns, alternating row
            # direction): consecutive bank indices are always physically
            # adjacent, with no discontinuity anywhere.  Logic that talks
            # to the banks is pulled toward them by the DFS phase, so an
            # off-center start costs nothing.
            slots = (
                (x, y if ci % 2 == 0 else self.fabric.rows - 1 - y)
                for ci, x in enumerate(bram_cols)
                for y in range(self.fabric.rows)
            )
            for cell in brams:
                demand = _demand_of(cell)
                chunks: List[Tuple[int, int, int]] = []
                while demand > 0:
                    try:
                        x, y = next(slots)
                    except StopIteration:
                        raise PlacementError(
                            f"device {self.fabric.device.name!r} out of bram "
                            f"capacity placing {cell.name!r}"
                        ) from None
                    taken = occupancy.take(x, y, demand)
                    if taken:
                        chunks.append((x, y, taken))
                        demand -= taken
                self._chunks[cell.name] = chunks
                total = sum(u for _x, _y, u in chunks)
                px = sum(x * u for x, _y, u in chunks) / total
                py = sum(y * u for _x, y, u in chunks) / total
                placement.put(cell, px, py, 0.0)
            obs.add("placement.cells_placed", len(brams))

        # A reused trajectory is valid only when the pre-greedy occupancy
        # matches the recording run's — fabric, seed, and the exact BRAM
        # floorplan sequence (which phase 1 derives from (name, demand)
        # alone).
        bram_sig = [(c.name, _demand_of(c)) for c in brams]
        steps: Optional[List[tuple]] = None
        if (
            reuse is not None
            and reuse.get("device") == self.fabric.device.name
            and reuse.get("seed") == self.seed
            and reuse.get("brams") == bram_sig
        ):
            steps = reuse["steps"]

        # Phase 2: greedy DFS.  I/O pads go after the core logic (they pin
        # to the die edge and must not drag the datapath there), macros go
        # last (they fill space around the packed fine-grained logic).
        with obs.span("greedy-place") as sp:
            order = self._bfs_order(netlist, neighbors, anchor)
            order = [c for c in order if c.kind is not CellKind.BRAM]
            small = [
                c
                for c in order
                if _demand_of(c) <= self.BIG_CELL_TILES * 64
                and c.kind is not CellKind.PORT
            ]
            ports = [c for c in order if c.kind is CellKind.PORT]
            big = [c for c in order if _demand_of(c) > self.BIG_CELL_TILES * 64]
            recorded: Optional[List[tuple]] = [] if record else None
            reused = 0
            for i, cell in enumerate(small + ports + big):
                # Always draw the jitter — the rng stream must advance
                # identically whether or not this step replays.
                desired = self._desired_position(
                    cell, neighbors, placement, rng, (cx, cy)
                )
                demand = _demand_of(cell)
                col_kind = _col_kind_for(cell)
                chunks = None
                if steps is not None:
                    if i < len(steps) and steps[i][:4] == (
                        cell.name, demand, col_kind, desired
                    ):
                        chunks = self._take_recorded(steps[i][4], occupancy)
                        if chunks is not None:
                            reused += 1
                    if chunks is None:
                        steps = None  # diverged: fresh allocation from here
                if chunks is None:
                    chunks = self._allocate(cell, desired, occupancy)
                self._commit_chunks(cell, chunks, placement)
                if recorded is not None:
                    recorded.append(
                        (cell.name, demand, col_kind, desired, tuple(chunks))
                    )
            sp.set("cells", len(order))
            if reuse is not None:
                sp.set("steps_reused", reused)
                obs.add("placement.trajectory_steps_reused", reused)
            obs.add("placement.cells_placed", len(order))
            if recorded is not None:
                self.trajectory = {
                    "device": self.fabric.device.name,
                    "seed": self.seed,
                    "brams": bram_sig,
                    "steps": recorded,
                }

        # Phase 3: refinement.  The outlier cutoff scales with the linear
        # dimension of the packed region (integer demand sum: identical
        # across engines, no float-order sensitivity).
        threshold = max(
            REFINE_OUTLIER_MIN,
            REFINE_OUTLIER_REL * math.sqrt(sum(_demand_of(c) for c in small)),
        )
        with obs.span("refine", passes=max(0, refine_passes)) as sp:
            moved = 0
            ctx = _RefineContext()
            for _ in range(max(0, refine_passes)):
                moved += self._refine(
                    small, neighbors, occupancy, placement, ctx, threshold
                )
            sp.set("moves", moved)
            obs.add("placement.refine_moves", moved)
        return placement

    # -- refinement ------------------------------------------------------
    def _refine(
        self,
        cells: List[Cell],
        neighbors: Dict[str, List[str]],
        occupancy: Occupancy,
        placement: Placement,
        ctx: Optional[_RefineContext] = None,
        threshold: float = REFINE_OUTLIER_MIN,
    ) -> int:
        """Re-seat outlier cells, committing only strict improvements.

        ``threshold`` is the outlier cutoff (see :data:`REFINE_OUTLIER_REL`
        — scale-relative, so the attempted-trial count stays linear in
        design size).  A move is accepted only when it reduces the cell's
        worst distance to its neighbors by a clear margin — this keeps each
        pass monotone per cell and avoids the displacement cascades a naive
        move-to-centroid sweep causes.

        Dispatches on :attr:`refine_engine`; both engines accept the exact
        same move sequence (the fast one only elides provably-identical
        failed trials and caches neighborhood summaries).
        """
        if self.refine_engine == "reference":
            return self._refine_reference(
                cells, neighbors, occupancy, placement, threshold
            )
        return self._refine_fast(
            cells, neighbors, occupancy, placement,
            ctx if ctx is not None else _RefineContext(),
            threshold,
        )

    @staticmethod
    def _neighbor_state(
        name: str,
        neighbors: Dict[str, List[str]],
        placement: Placement,
    ) -> _RefineState:
        """Full O(degree) scan building one cell's :class:`_RefineState`."""
        st = _RefineState()
        pos = placement.pos
        m1 = m2 = m3 = m4 = -math.inf
        sx = sy = 0.0
        count = 0
        for n in neighbors[name]:
            p = pos.get(n)
            if p is None:
                continue
            px, py = p
            a = -px - py
            if a > m1:
                m1 = a
            b = -px + py
            if b > m2:
                m2 = b
            c = px - py
            if c > m3:
                m3 = c
            d = px + py
            if d > m4:
                m4 = d
            sx += px
            sy += py
            count += 1
        st.m1, st.m2, st.m3, st.m4 = m1, m2, m3, m4
        st.sx, st.sy, st.count = sx, sy, count
        return st

    @staticmethod
    def _corner_cost(x: float, y: float, st: _RefineState) -> float:
        """Worst Manhattan distance from (x, y) to the summarized set."""
        return max(x + y + st.m1, x - y + st.m2, -x + y + st.m3, -x - y + st.m4)

    def _refine_trial(
        self,
        cell: Cell,
        st: _RefineState,
        occupancy: Occupancy,
        placement: Placement,
        threshold: float = REFINE_OUTLIER_MIN,
    ) -> Optional[bool]:
        """One trial move toward the neighborhood centroid.

        Returns ``True`` (accepted), ``False`` (tried and reverted — a
        failed trial restores position, radius, chunks, and occupancy
        exactly, so it is state-neutral), or ``None`` (below the outlier
        threshold; no trial attempted).
        """
        x, y = placement.pos[cell.name]
        old_cost = self._corner_cost(x, y, st)
        if old_cost <= threshold:
            return None
        ix = st.sx / st.count
        iy = st.sy / st.count
        old_chunks = self._chunks.get(cell.name, [])
        old_radius = placement.radius[cell.name]
        occupancy.release(old_chunks)
        self._allocate_and_put(cell, (ix, iy), occupancy, placement)
        nx, ny = placement.pos[cell.name]
        if self._corner_cost(nx, ny, st) < old_cost - 2.0:
            return True
        # Revert: free the trial spot, retake the original.
        occupancy.release(self._chunks[cell.name])
        for ox, oy, units in old_chunks:
            occupancy.take(ox, oy, units)
        self._chunks[cell.name] = old_chunks
        placement.put(cell, x, y, old_radius)
        return False

    def _refine_fast(
        self,
        cells: List[Cell],
        neighbors: Dict[str, List[str]],
        occupancy: Occupancy,
        placement: Placement,
        ctx: _RefineContext,
        threshold: float = REFINE_OUTLIER_MIN,
    ) -> int:
        moved = 0
        states = ctx.states
        for cell in cells:
            if cell.kind is CellKind.PORT:
                continue
            name = cell.name
            st = states.get(name)
            if st is None or name in ctx.dirty:
                st = self._neighbor_state(name, neighbors, placement)
                states[name] = st
                ctx.dirty.discard(name)
                ctx.fail_guard.pop(name, None)
            if st.count == 0:
                continue
            if name in ctx.fail_guard:
                # Provably-identical repeat of a failed trial: neighbors
                # unmoved and the occupancy the failed search examined is
                # untouched, so re-running it must fail again.
                continue
            before = {(x, y) for x, y, _u in self._chunks.get(name, ())}
            accepted = self._refine_trial(cell, st, occupancy, placement, threshold)
            if accepted is None:
                continue
            if accepted:
                moved += 1
                for nbr in neighbors[name]:
                    ctx.dirty.add(nbr)
                    ctx.fail_guard.pop(nbr, None)
                ctx.fail_guard.pop(name, None)
                # The move changed occupancy at the released old tiles and
                # the taken new ones; failed searches that examined any of
                # them could now resolve differently.
                touched = before | {
                    (x, y) for x, y, _u in self._chunks[name]
                }
                ctx.invalidate_tiles(touched)
            else:
                box = occupancy.last_search
                if box is not None:
                    ctx.fail_guard[name] = (box, frozenset(before))
        return moved

    def _refine_reference(
        self,
        cells: List[Cell],
        neighbors: Dict[str, List[str]],
        occupancy: Occupancy,
        placement: Placement,
        threshold: float = REFINE_OUTLIER_MIN,
    ) -> int:
        """Naive engine: rebuild every summary, attempt every trial."""
        moved = 0
        for cell in cells:
            if cell.kind is CellKind.PORT:
                continue
            st = self._neighbor_state(cell.name, neighbors, placement)
            if st.count == 0:
                continue
            if self._refine_trial(cell, st, occupancy, placement, threshold):
                moved += 1
        return moved

    # ------------------------------------------------------------------
    @staticmethod
    def _adjacency(netlist: Netlist) -> Dict[str, List[str]]:
        """Deduped undirected neighbor lists, cached per netlist.

        A cell driving another through k parallel nets appears once, not k
        times — k-fold duplicates would otherwise inflate both the centroid
        weighting and every worst-distance scan of broadcast hubs.  First
        occurrence order is preserved (the DFS ordering depends on it).
        """
        cached = Placer._ADJACENCY_CACHE.get(netlist)
        if cached is not None:
            n_cells, n_nets, adj = cached
            if n_cells == len(netlist.cells) and n_nets == len(netlist.nets):
                return adj
        adj: Dict[str, List[str]] = {name: [] for name in netlist.cells}
        seen: Dict[str, set] = {name: set() for name in netlist.cells}
        for net in netlist.nets.values():
            driver = net.driver.name
            for sink, _pin in net.sinks:
                if sink.name != driver:
                    if sink.name not in seen[driver]:
                        seen[driver].add(sink.name)
                        adj[driver].append(sink.name)
                    if driver not in seen[sink.name]:
                        seen[sink.name].add(driver)
                        adj[sink.name].append(driver)
        Placer._ADJACENCY_CACHE[netlist] = (
            len(netlist.cells), len(netlist.nets), adj
        )
        return adj

    def _bfs_order(
        self,
        netlist: Netlist,
        neighbors: Dict[str, List[str]],
        anchor: Optional[str],
    ) -> List[Cell]:
        """Depth-first traversal order from the anchor.

        Depth-first (not breadth-first) matters for quality: it follows one
        dependence chain — one unrolled copy, one reduction subtree — to
        completion before starting the next, so logically-cohesive cones
        get physically contiguous placements.  Breadth-first would lay the
        design out level-major and stretch every intra-copy net across the
        full unroll width.
        """
        if anchor is None:
            ports = netlist.cells_of_kind(CellKind.PORT)
            ctrls = netlist.cells_of_kind(CellKind.CTRL)
            anchor = (ports or ctrls or list(netlist.cells.values()))[0].name
        seen = {anchor}
        stack = [anchor]
        order: List[Cell] = []
        remaining = list(netlist.cells)
        while stack or len(order) < len(netlist.cells):
            if not stack:
                # Disconnected component: restart from the first unseen
                # cell in declaration order.
                nxt = next(name for name in remaining if name not in seen)
                seen.add(nxt)
                stack.append(nxt)
            name = stack.pop()
            order.append(netlist.cells[name])
            # Reversed so the first-declared neighbor is visited first.
            for nbr in reversed(neighbors[name]):
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        return order

    def _desired_position(
        self,
        cell: Cell,
        neighbors: Dict[str, List[str]],
        placement: Placement,
        rng: random.Random,
        fallback: Tuple[int, int],
    ) -> Tuple[float, float]:
        placed = [n for n in neighbors[cell.name] if n in placement.pos]
        if placed:
            x = sum(placement.pos[n][0] for n in placed) / len(placed)
            y = sum(placement.pos[n][1] for n in placed) / len(placed)
        else:
            x, y = fallback
        x += rng.uniform(-JITTER_TILES, JITTER_TILES)
        y += rng.uniform(-JITTER_TILES, JITTER_TILES)
        return x, y

    @staticmethod
    def _take_recorded(
        chunks: Tuple[Tuple[int, int, int], ...],
        occupancy: Occupancy,
    ) -> Optional[List[Tuple[int, int, int]]]:
        """Re-take a recorded chunk list directly (no spiral search).

        Returns ``None`` — releasing any partial takes — if the capacity is
        not exactly available, so the caller falls back to fresh allocation
        from an untouched occupancy (what a scratch run would see).
        """
        taken: List[Tuple[int, int, int]] = []
        for x, y, units in chunks:
            got = occupancy.take(x, y, units)
            if got != units:
                if got:
                    occupancy.release([(x, y, got)])
                occupancy.release(taken)
                return None
            taken.append((x, y, units))
        return taken

    def _allocate(
        self,
        cell: Cell,
        desired: Tuple[float, float],
        occupancy: Occupancy,
    ) -> List[Tuple[int, int, int]]:
        """Search the occupancy for ``cell``'s demand near ``desired``."""
        dx, dy = desired
        if cell.kind is CellKind.PORT:
            # Ports pin to the die's left edge at the requested row.
            dx = 0.0
        return occupancy.allocate(
            max(0, min(self.fabric.cols - 1, int(round(dx)))),
            max(0, min(self.fabric.rows - 1, int(round(dy)))),
            _col_kind_for(cell),
            _demand_of(cell),
        )

    def _commit_chunks(
        self,
        cell: Cell,
        chunks: List[Tuple[int, int, int]],
        placement: Placement,
    ) -> None:
        """Bind allocated chunks to ``cell``: position, radius, bookkeeping."""
        self._chunks[cell.name] = chunks
        total = sum(units for _x, _y, units in chunks)
        x = sum(cx * units for cx, _y, units in chunks) / total
        y = sum(cy * units for _x, cy, units in chunks) / total
        if len(chunks) == 1:
            radius = 0.0
        else:
            xs = [cx for cx, _y, _u in chunks]
            ys = [cy for _x, cy, _u in chunks]
            radius = ((max(xs) - min(xs)) + (max(ys) - min(ys))) / 4.0
        placement.put(cell, x, y, radius)

    def _allocate_and_put(
        self,
        cell: Cell,
        desired: Tuple[float, float],
        occupancy: Occupancy,
        placement: Placement,
    ) -> None:
        self._commit_chunks(cell, self._allocate(cell, desired, occupancy), placement)
