"""Placed-net delay model.

For a sink pin of a placed net::

    delay = CONNECTION_NS                          # entering/leaving routing
          + NS_PER_TILE * manhattan_distance       # spatial spread term
          + FANOUT_LOG_NS * log2(fanout)           # buffer-tree depth term

The two variable terms are the heart of the reproduction:

* the **distance term** grows with how far apart the placer had to put the
  sinks — many sinks (or physically large ones, like BRAM banks) occupy a
  large area, so broadcast spread rises with broadcast factor;
* the **fanout term** models the delay of the buffer/routing tree a router
  builds for a multi-sink net; register replication
  (:mod:`repro.physical.replication`) splits nets and thereby shrinks this
  term, but can never shrink the distance term.

Constants are calibrated so that the reproduced Figure 9 and the genome
case study (0.78 ns predicted vs ~2.08 ns actual for a 64-broadcast sub)
land near the paper's reported operating points.
"""

from __future__ import annotations

import math

from repro.physical.placement import Placement
from repro.rtl.netlist import Cell, Net

#: Fixed cost of entering and leaving the routing network (ns).
CONNECTION_NS = 0.10
#: Incremental wire delay per tile of Manhattan distance (ns/tile).
#: Calibrated so crossing the modelled VU9P die (~270 tiles) costs ~8 ns,
#: in line with real UltraScale+ corner-to-corner routing.
NS_PER_TILE = 0.03
#: Incremental delay per doubling of net fanout (ns/log2).
FANOUT_LOG_NS = 0.20


def sink_delay(placement: Placement, net: Net, sink: Cell, pin: str = "") -> float:
    """Routing delay from ``net``'s driver to one ``sink`` pin, in ns.

    Pins named ``ce*`` / ``we*`` / ``en*`` are broadcast control pins that
    reach registers spread across the sink's whole area (full radius).
    """
    control = pin.startswith(("ce", "we", "en"))
    dist = placement.distance(net.driver, sink, control_sink=control)
    fan_term = FANOUT_LOG_NS * math.log2(max(net.fanout, 1))
    return CONNECTION_NS + NS_PER_TILE * dist + fan_term


def worst_sink_delay(placement: Placement, net: Net) -> float:
    """Largest sink delay of the net (0.0 for a sink-less net).

    The pin is passed through so control pins (``ce*``/``we*``/``en*``)
    keep their full-radius penalty.
    """
    if not net.sinks:
        return 0.0
    return max(sink_delay(placement, net, cell, pin) for cell, pin in net.sinks)
