"""Backend register replication for high-fanout nets.

Models Vivado's post-placement fanout optimization (which the paper's
experiments leave *enabled* — the broadcasts hurt even so).  A register
driving more than ``max_fanout`` sinks is duplicated; each duplicate is
placed at the centroid of its sink cluster and drives only that cluster.

Two essential asymmetries are preserved from real tools:

* only **register** (FF) drivers are replicated.  Combinational drivers —
  the stall/enable aggregators and done-reduce gates of §3.2/§3.3 — are not:
  duplicating the gate would just move the same broadcast onto its inputs,
  whose root (a FIFO status flag, a BRAM output) is unique and cannot be
  duplicated.  This is exactly why the paper argues control broadcasts
  "cannot be optimized away" downstream and need behaviour-level fixes.
* replication is **bounded** (``max_replicas``); beyond that, congestion and
  the un-shrinkable spread term dominate, so measured broadcast delay keeps
  growing with broadcast factor (Figure 9's raw curves).

The duplicate registers load the original register's input net (its D-pin
cone now feeds every copy), so the *previous* cycle pays a small price —
also true on silicon.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.physical.placement import Placement
from repro.rtl.netlist import Cell, CellKind, Net, Netlist, NetKind


@dataclass(frozen=True)
class ReplicationConfig:
    """Knobs of the fanout-optimization pass.

    Attributes:
        max_fanout: Target maximum sinks per (split) net.
        max_replicas: Upper bound on duplicates of one register, modelling
            congestion/utilization limits.
        enabled: Global on/off (the ablation bench sweeps this).
    """

    max_fanout: int = 32
    max_replicas: int = 4
    enabled: bool = True


#: Side of the square buckets sinks are grouped into before clustering.
_BUCKET_TILES = 12


def _cluster_sinks(
    placement: Placement, sinks: List[Tuple[Cell, str]], groups: int
) -> List[List[Tuple[Cell, str]]]:
    """Split sinks into ``groups`` spatially-coherent chunks.

    Sinks are bucketed into fixed-size tiles of the die and the buckets are
    walked in boustrophedon (snake) order — adjacent chunks are compact 2-D
    neighborhoods, approximating the clustering a router's fanout
    optimization performs.  (A plain coordinate sort makes thin full-height
    slabs; a Z-order sort jumps across power-of-two boundaries.)
    """

    def bucket_key(item: Tuple[Cell, str]) -> Tuple[int, float, str]:
        x, y = placement.pos[item[0].name]
        bx = int(x) // _BUCKET_TILES
        by = int(y) // _BUCKET_TILES
        # Snake order: odd bucket-columns walk downward.
        snake_by = -by if bx % 2 else by
        return (bx * 10_000 + snake_by, y, item[0].name)

    ordered = sorted(sinks, key=bucket_key)
    size = math.ceil(len(ordered) / groups)
    return [ordered[i : i + size] for i in range(0, len(ordered), size)]


def _centroid(placement: Placement, sinks: List[Tuple[Cell, str]]) -> Tuple[float, float]:
    xs = [placement.pos[cell.name][0] for cell, _ in sinks]
    ys = [placement.pos[cell.name][1] for cell, _ in sinks]
    return sum(xs) / len(xs), sum(ys) / len(ys)


def replicate_high_fanout(
    netlist: Netlist,
    placement: Placement,
    config: ReplicationConfig = ReplicationConfig(),
    max_passes: int = 6,
) -> int:
    """Split register-driven high-fanout nets in place, to a fixpoint.

    Runs up to ``max_passes`` sweeps: replicas created in one pass load
    their driver's input net, which the next pass may split in turn — the
    emergent structure is a registered fanout *tree*, which is what a real
    physical optimizer builds for a register feeding thousands of loads.

    Pass 1 examines every net; later passes examine only the worklist of
    nets *touched* by the previous pass (sinks rewritten, freshly created,
    or loaded by new replicas).  A net untouched since its last examination
    repeats the same skip decision, so the worklist sweep reaches the same
    fixpoint as the seed's full rescan without the O(nets) sink scans per
    pass.

    Returns the number of replica registers created.  New replicas are
    added to ``placement`` at their cluster centroids.
    """
    if not config.enabled:
        return 0
    created = 0
    candidates: Optional[List[Net]] = None
    for index in range(max_passes):
        with obs.span("replication-pass", index=index) as sp:
            pass_created, touched = _replicate_pass(netlist, placement, config, candidates)
            sp.set("replicas", pass_created)
            sp.set("examined", "all" if candidates is None else len(candidates))
        created += pass_created
        if pass_created == 0:
            break
        # Seed-equivalent ordering: the full rescan walked nets in dict
        # insertion order, which ``Net._seq`` reproduces.
        candidates = sorted(touched.values(), key=lambda n: n._seq)
    obs.add("physical.replicas_created", created)
    return created


def _replicate_pass(
    netlist: Netlist,
    placement: Placement,
    config: ReplicationConfig,
    candidates: Optional[List[Net]] = None,
) -> Tuple[int, Dict[str, Net]]:
    created = 0
    touched: Dict[str, Net] = {}
    # The seed pass iterated a snapshot of every net in dict insertion
    # order, so a feeder touched mid-pass was still examined later in the
    # *same* pass if it lay ahead in that order.  A seq-ordered heap
    # reproduces this: nets touched at a position behind the cursor wait
    # for the next pass (via ``touched``), nets ahead are enqueued — but
    # only if they existed at pass start, since the seed snapshot excluded
    # nets created mid-pass.
    snapshot_limit = netlist._net_counter
    work = list(netlist.nets.values()) if candidates is None else candidates
    heap: List[Tuple[int, str]] = [(net._seq, net.name) for net in work]
    heapq.heapify(heap)
    by_name: Dict[str, Net] = {net.name: net for net in work}
    queued = set(by_name)

    def requeue(net: Net, cursor_seq: int) -> None:
        touched[net.name] = net
        if net._seq > cursor_seq and net._seq < snapshot_limit and net.name not in queued:
            queued.add(net.name)
            heapq.heappush(heap, (net._seq, net.name))
            by_name[net.name] = net

    while heap:
        seq, name = heapq.heappop(heap)
        net = by_name[name]
        if net.name not in netlist.nets:
            continue
        if net.driver.kind is not CellKind.FF:
            continue
        if net.kind is NetKind.CLOCKLESS:
            continue
        if net.fanout <= config.max_fanout:
            continue
        # Narrow signals (single-bit enables, valid flags) replicate almost
        # for free, so the optimizer is far more generous with them.
        max_replicas = (
            max(config.max_replicas, 16) if net.width <= 4 else config.max_replicas
        )
        groups = min(math.ceil(net.fanout / config.max_fanout), max_replicas + 1)
        if groups <= 1:
            continue
        obs.add("physical.nets_replicated", 1)
        obs.observe("replication.fanout", net.fanout)
        clusters = _cluster_sinks(placement, net.sinks, groups)
        feeder = netlist.input_net_of(net.driver)
        # Cluster 0 stays on the original driver/net.
        net.sinks = list(clusters[0])
        touched[net.name] = net
        for i, cluster in enumerate(clusters[1:], start=1):
            replica = netlist.new_cell(
                f"{net.driver.name}_rep{i}",
                CellKind.FF,
                delay_ns=net.driver.delay_ns,
                ffs=net.driver.ffs,
                width=net.driver.width,
                tag="replica",
            )
            cx, cy = _centroid(placement, cluster)
            placement.put(replica, cx, cy, 0.0)
            rep_net = netlist.connect(
                f"{net.name}_rep{i}", replica, cluster, kind=net.kind, width=net.width
            )
            touched[rep_net.name] = rep_net
            if feeder is not None:
                feeder.add_sink(replica, "d")
                requeue(feeder, seq)
            created += 1
    return created, touched
