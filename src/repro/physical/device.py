"""FPGA device catalog.

Capacities approximate the parts the paper targets (Table 1): AWS F1's
VU9P, the ZC706's Zynq-7045, the Alveo U50's VU35P, and an Alpha-Data
Virtex-7 690T.  Utilization percentages in our reproduced Table 1 are
computed against these capacities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import PhysicalError


@dataclass(frozen=True)
class Device:
    """Capacity summary of one FPGA part.

    Attributes:
        name: Catalog key.
        family: Marketing family string (reports only).
        luts / ffs: Logic capacity.
        bram36: Number of 36Kb block RAMs.
        dsps: Number of DSP48 slices.
    """

    name: str
    family: str
    luts: int
    ffs: int
    bram36: int
    dsps: int

    def utilization(self, luts: int, ffs: int, brams: int, dsps: int) -> Dict[str, float]:
        """Percent utilization of each primitive class."""
        return {
            "LUT": 100.0 * luts / self.luts,
            "FF": 100.0 * ffs / self.ffs,
            "BRAM": 100.0 * brams / self.bram36,
            "DSP": 100.0 * dsps / self.dsps if self.dsps else 0.0,
        }


DEVICES: Dict[str, Device] = {
    # AWS F1: Virtex UltraScale+ VU9P (one SLR-equivalent usable region is
    # smaller, but Table 1 percentages are whole-chip).
    "aws-f1": Device("aws-f1", "UltraScale+ (AWS F1)", 1_182_240, 2_364_480, 2_160, 6_840),
    # ZC706: Zynq-7045.
    "zc706": Device("zc706", "ZYNQ (ZC706)", 218_600, 437_200, 545, 900),
    # Alveo U50: VU35P-class fabric.
    "alveo-u50": Device("alveo-u50", "UltraScale+ (Alveo U50)", 872_000, 1_743_000, 1_344, 5_952),
    # Alpha-Data board: Virtex-7 690T.
    "virtex-7": Device("virtex-7", "Virtex-7 (Alpha-Data)", 433_200, 866_400, 1_470, 3_600),
}


def get_device(name: str) -> Device:
    """Look up a device by catalog key, raising a helpful error."""
    try:
        return DEVICES[name]
    except KeyError as exc:
        raise PhysicalError(
            f"unknown device {name!r}; known: {sorted(DEVICES)}"
        ) from exc
