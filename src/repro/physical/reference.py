"""Reference (seed) static timing analyzer — the executable specification.

This is the original scan-based analyzer the project shipped with, kept
verbatim as a differential-testing oracle for the indexed, incremental
engine in :mod:`repro.physical.timing`.  It recomputes everything from
scratch and re-scans ``net.sinks`` per sink pin — O(Σ fanout²) per run —
which is exactly the hot path the production engine removed, so it must
never be used in the flow itself.  The equivalence suite
(``tests/test_sta_equivalence.py``) and ``benchmarks/bench_sta_scaling.py``
assert the production engine reproduces this implementation bit-for-bit.

Do not "optimize" this module: its value is that it stays the slow, obvious
formulation of the timing semantics.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.errors import PhysicalError
from repro.physical.netdelay import sink_delay
from repro.physical.placement import Placement
from repro.physical.timing import (
    MIN_PERIOD_NS,
    SETUP_NS,
    _CLASS_PRIORITY,
    PathHop,
    TimingResult,
)
from repro.rtl.netlist import Cell, Net, Netlist, NetKind


class ReferenceTimingAnalyzer:
    """Seed-version STA: full recompute, per-sink net re-scan."""

    def __init__(self, netlist: Netlist, placement: Placement) -> None:
        self.netlist = netlist
        self.placement = placement
        self._input_nets: Dict[str, List[Net]] = {name: [] for name in netlist.cells}
        for net in netlist.nets.values():
            for cell, _pin in net.sinks:
                self._input_nets[cell.name].append(net)

    # ------------------------------------------------------------------
    def analyze(self) -> TimingResult:
        arrival, parent = self._propagate()
        endpoints = self._endpoints(arrival)
        if not endpoints:
            raise PhysicalError(
                f"netlist {self.netlist.name!r} has no timing endpoints"
            )
        class_periods: Dict[str, float] = {}
        worst: Optional[Tuple[float, Cell, Net, NetKind]] = None
        for total, sink, net in endpoints:
            kind = self._classify(net, parent)
            key = kind.value
            class_periods[key] = max(class_periods.get(key, 0.0), total)
            if worst is None or total > worst[0]:
                worst = (total, sink, net, kind)
        assert worst is not None
        total, sink, net, kind = worst
        hops, startpoint = self._trace(sink, net, arrival)
        period = max(total, MIN_PERIOD_NS)
        return TimingResult(
            period_ns=period,
            fmax_mhz=1000.0 / period,
            raw_period_ns=total,
            critical_path=hops,
            path_class=kind,
            class_periods=class_periods,
            startpoint=startpoint,
            endpoint=sink.name,
        )

    # ------------------------------------------------------------------
    def _propagate(self) -> Tuple[Dict[str, float], Dict[str, Tuple[Cell, Net, float]]]:
        """Forward arrival-time propagation through combinational cells."""
        arrival: Dict[str, float] = {}
        parent: Dict[str, Tuple[Cell, Net, float]] = {}
        indeg: Dict[str, int] = {}
        comb_succ: Dict[str, List[str]] = {name: [] for name in self.netlist.cells}
        for cell in self.netlist.cells.values():
            if cell.is_sequential:
                arrival[cell.name] = cell.delay_ns
                continue
            count = 0
            for net in self._input_nets[cell.name]:
                if not net.driver.is_sequential:
                    count += 1
                    comb_succ[net.driver.name].append(cell.name)
            indeg[cell.name] = count
        ready = deque(name for name, d in indeg.items() if d == 0)
        resolved = 0
        while ready:
            name = ready.popleft()
            resolved += 1
            cell = self.netlist.cells[name]
            best = 0.0
            best_parent: Optional[Tuple[Cell, Net, float]] = None
            for net in self._input_nets[name]:
                for sink_cell, pin in net.sinks:
                    if sink_cell is not cell:
                        continue
                    incr = sink_delay(self.placement, net, cell, pin)
                    candidate = arrival[net.driver.name] + incr
                    if candidate > best:
                        best = candidate
                        best_parent = (net.driver, net, incr)
            arrival[name] = best + cell.delay_ns
            if best_parent is not None:
                parent[name] = best_parent
            for succ in comb_succ[name]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
        if resolved != len(indeg):
            unresolved = sorted(n for n, d in indeg.items() if d > 0)[:5]
            raise PhysicalError(f"combinational cycle at {unresolved}")
        return arrival, parent

    def _endpoints(self, arrival: Dict[str, float]) -> List[Tuple[float, Cell, Net]]:
        """(total_delay, capturing_cell, last_net) for every seq sink pin."""
        endpoints: List[Tuple[float, Cell, Net]] = []
        for net in self.netlist.nets.values():
            if net.kind is NetKind.CLOCKLESS:
                continue
            for cell, pin in net.sinks:
                if not cell.is_sequential:
                    continue
                total = (
                    arrival[net.driver.name]
                    + sink_delay(self.placement, net, cell, pin)
                    + SETUP_NS
                )
                endpoints.append((total, cell, net))
        return endpoints

    def _classify(
        self, last_net: Net, parent: Dict[str, Tuple[Cell, Net, float]]
    ) -> NetKind:
        """Dominant net kind along the critical cone into ``last_net``."""
        best = last_net.kind
        cursor = last_net.driver
        guard = 0
        while cursor.name in parent and guard < 10_000:
            _driver, net, _incr = parent[cursor.name]
            if _CLASS_PRIORITY[net.kind] > _CLASS_PRIORITY[best]:
                best = net.kind
            cursor = _driver
            guard += 1
        return best

    def _trace(
        self, endpoint: Cell, last_net: Net, arrival: Dict[str, float]
    ) -> Tuple[List[PathHop], str]:
        """Reconstruct the critical path ending at ``endpoint``."""
        # Re-run a local backward walk using the same argmax rule as
        # _propagate (parent map only covers comb cells).
        hops: List[PathHop] = []
        end_pin = next((p for c, p in last_net.sinks if c is endpoint), "")
        incr = sink_delay(self.placement, last_net, endpoint, end_pin)
        hops.append(
            PathHop(
                cell=endpoint.name,
                net=last_net.name,
                incr_ns=incr + SETUP_NS,
                arrival_ns=arrival[last_net.driver.name] + incr + SETUP_NS,
            )
        )
        cursor = last_net.driver
        guard = 0
        while not cursor.is_sequential and guard < 10_000:
            best_net: Optional[Net] = None
            best_val = -1.0
            best_incr = 0.0
            for net in self._input_nets[cursor.name]:
                for sink_cell, pin in net.sinks:
                    if sink_cell is not cursor:
                        continue
                    step = sink_delay(self.placement, net, cursor, pin)
                    value = arrival[net.driver.name] + step
                    if value > best_val:
                        best_val = value
                        best_net = net
                        best_incr = step
            if best_net is None:
                break
            hops.append(
                PathHop(
                    cell=cursor.name,
                    net=best_net.name,
                    incr_ns=best_incr + cursor.delay_ns,
                    arrival_ns=arrival[cursor.name],
                )
            )
            cursor = best_net.driver
            guard += 1
        hops.reverse()
        return hops, cursor.name
