"""ASCII die maps of placements.

Two views:

* :func:`density_map` — occupancy heat map of the whole die (where did the
  design land, where are the BRAM/DSP columns);
* :func:`net_map` — one net drawn over the die: driver ``S``, sinks ``x`` —
  the quickest way to *see* a broadcast's spatial spread (§3.1's story in
  one picture).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.physical.fabric import BRAM_COL, DSP_COL, Fabric
from repro.physical.placement import Placement
from repro.rtl.netlist import Net, Netlist

#: Shades from empty to full.
_SHADES = " .:-=+*#%@"


def density_map(
    netlist: Netlist,
    placement: Placement,
    fabric: Fabric,
    cols: int = 72,
    rows: int = 28,
) -> str:
    """Render cell density downsampled onto a ``cols`` x ``rows`` canvas."""
    grid: List[List[float]] = [[0.0] * cols for _ in range(rows)]
    sx = cols / fabric.cols
    sy = rows / fabric.rows
    for cell in netlist.cells.values():
        if cell.name not in placement.pos:
            continue
        x, y = placement.pos[cell.name]
        cx = min(cols - 1, max(0, int(x * sx)))
        cy = min(rows - 1, max(0, int(y * sy)))
        grid[cy][cx] += max(1, cell.site_count)
    peak = max((v for row in grid for v in row), default=1.0) or 1.0
    lines = [
        f"die map ({fabric.cols}x{fabric.rows} tiles, peak={peak:.0f} "
        "sites/char, sqrt shading):"
    ]
    header = [" "] * cols
    for x in range(fabric.cols):
        col_char = {"bram": "B", "dsp": "D"}.get(fabric.col_type(x), None)
        if col_char:
            header[min(cols - 1, int(x * sx))] = col_char
    lines.append("".join(header))
    for row in grid:
        rendered = []
        for v in row:
            # sqrt scaling keeps sparse regions visible next to hot spots.
            shade = int(((v / peak) ** 0.5) * (len(_SHADES) - 1))
            rendered.append(_SHADES[min(len(_SHADES) - 1, shade)])
        lines.append("".join(rendered))
    return "\n".join(lines)


def net_map(
    net: Net,
    placement: Placement,
    fabric: Fabric,
    cols: int = 72,
    rows: int = 28,
) -> str:
    """Render one net: driver ``S``, sinks ``x``, overlap ``X``."""
    canvas: List[List[str]] = [[" "] * cols for _ in range(rows)]
    sx = cols / fabric.cols
    sy = rows / fabric.rows

    def plot(name: str, mark: str) -> None:
        x, y = placement.pos[name]
        cx = min(cols - 1, max(0, int(x * sx)))
        cy = min(rows - 1, max(0, int(y * sy)))
        canvas[cy][cx] = "X" if canvas[cy][cx] not in (" ", mark) else mark

    for cell, _pin in net.sinks:
        plot(cell.name, "x")
    plot(net.driver.name, "S")
    spread = placement.spread([cell for cell, _pin in net.sinks] + [net.driver])
    lines = [
        f"net {net.name!r} ({net.kind.value}, fanout {net.fanout}, "
        f"spread {spread:.0f} tiles):"
    ]
    lines.extend("".join(row) for row in canvas)
    return "\n".join(lines)


def worst_broadcast_map(
    netlist: Netlist, placement: Placement, fabric: Fabric
) -> str:
    """Convenience: draw the single highest-fanout timed net."""
    nets = netlist.high_fanout_nets(threshold=2)
    if not nets:
        return "no multi-sink nets"
    return net_map(nets[0], placement, fabric)
