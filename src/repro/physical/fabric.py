"""Column-based fabric model of an FPGA.

The die is a grid of tiles.  Most columns are CLB columns (logic + FFs);
BRAM and DSP columns are interleaved at regular intervals, like real Xilinx
parts.  Distances are measured in tile units; the net-delay model converts
tile distance to nanoseconds.

Capacity accounting is per-tile:

* CLB tile: ``TILE_LUT_EQ`` "LUT-equivalents" (FF pairs count half a LUT);
* BRAM tile: one BRAM36;
* DSP tile: two DSP48s.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import PlacementError
from repro.physical.device import Device

#: LUT-equivalents per CLB tile (64 LUTs; FFs ride along at 2-per-LUT-eq).
TILE_LUT_EQ = 64
#: DSP48 slices per DSP-column tile.
TILE_DSP = 2

CLB, BRAM_COL, DSP_COL = "clb", "bram", "dsp"


class Fabric:
    """A sited tile grid derived from a :class:`Device`'s capacities."""

    def __init__(self, device: Device) -> None:
        self.device = device
        clb_tiles = math.ceil(device.luts / TILE_LUT_EQ)
        bram_tiles = device.bram36
        dsp_tiles = math.ceil(device.dsps / TILE_DSP)
        total = clb_tiles + bram_tiles + dsp_tiles
        self.rows = max(8, int(math.sqrt(total)))
        clb_cols = math.ceil(clb_tiles / self.rows)
        bram_cols = math.ceil(bram_tiles / self.rows)
        dsp_cols = math.ceil(dsp_tiles / self.rows)
        self.cols = clb_cols + bram_cols + dsp_cols
        self.col_types = self._interleave(clb_cols, bram_cols, dsp_cols)

    @staticmethod
    def _interleave(clb: int, bram: int, dsp: int) -> List[str]:
        """Spread BRAM/DSP columns evenly among CLB columns."""
        total = clb + bram + dsp
        types = [CLB] * total
        if bram:
            step = total / bram
            for i in range(bram):
                types[min(total - 1, int((i + 0.5) * step))] = BRAM_COL
        if dsp:
            step = total / dsp
            for i in range(dsp):
                # Walk right from the ideal slot to the nearest CLB column.
                j = min(total - 1, int((i + 0.33) * step))
                while j < total and types[j] != CLB:
                    j += 1
                if j >= total:
                    j = types.index(CLB)
                types[j] = DSP_COL
        return types

    def col_type(self, x: int) -> str:
        return self.col_types[x]

    def tile_capacity(self, x: int) -> int:
        """Capacity of one tile in column ``x``, in that column's unit."""
        kind = self.col_types[x]
        if kind == CLB:
            return TILE_LUT_EQ
        if kind == BRAM_COL:
            return 1
        return TILE_DSP

    @property
    def center(self) -> Tuple[int, int]:
        return self.cols // 2, self.rows // 2

    def in_bounds(self, x: int, y: int) -> bool:
        return 0 <= x < self.cols and 0 <= y < self.rows

    def ring(self, cx: int, cy: int, radius: int) -> Iterator[Tuple[int, int]]:
        """Tiles at Chebyshev distance ``radius`` from (cx, cy), in bounds.

        Radius 0 yields the center itself.  Deterministic clockwise order.
        """
        if radius == 0:
            if self.in_bounds(cx, cy):
                yield (cx, cy)
            return
        x0, x1 = cx - radius, cx + radius
        y0, y1 = cy - radius, cy + radius
        for x in range(x0, x1 + 1):
            if self.in_bounds(x, y0):
                yield (x, y0)
        for y in range(y0 + 1, y1 + 1):
            if self.in_bounds(x1, y):
                yield (x1, y)
        for x in range(x1 - 1, x0 - 1, -1):
            if self.in_bounds(x, y1):
                yield (x, y1)
        for y in range(y1 - 1, y0, -1):
            if self.in_bounds(x0, y):
                yield (x0, y)

    def nearest_tiles(
        self, cx: int, cy: int, col_kind: str, limit_radius: Optional[int] = None
    ) -> Iterator[Tuple[int, int]]:
        """Tiles of the requested column type by increasing ring distance."""
        max_radius = limit_radius if limit_radius is not None else max(self.cols, self.rows)
        for radius in range(0, max_radius + 1):
            for x, y in self.ring(cx, cy, radius):
                if self.col_types[x] == col_kind:
                    yield (x, y)


class Occupancy:
    """Mutable per-tile free-capacity tracker used during placement."""

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric
        self._used: Dict[Tuple[int, int], int] = {}
        #: ``(cx, cy, radius)`` Chebyshev bound of the tiles examined by the
        #: most recent :meth:`allocate` call.  The allocation result is a
        #: pure function of the free capacities inside this box: a search
        #: re-run against an occupancy unchanged within the box walks the
        #: same tiles in the same order and returns identical chunks
        #: (placement's refine uses this to skip provably-identical
        #: failed trial moves).
        self.last_search: Optional[Tuple[int, int, int]] = None

    def free_at(self, x: int, y: int) -> int:
        return self.fabric.tile_capacity(x) - self._used.get((x, y), 0)

    def take(self, x: int, y: int, amount: int) -> int:
        """Consume up to ``amount`` units at a tile; returns amount taken."""
        free = self.free_at(x, y)
        taken = min(free, amount)
        if taken > 0:
            self._used[(x, y)] = self._used.get((x, y), 0) + taken
        return taken

    def release(self, chunks) -> None:
        """Return previously-allocated ``[(x, y, units)]`` chunks."""
        for x, y, units in chunks:
            remaining = self._used.get((x, y), 0) - units
            if remaining > 0:
                self._used[(x, y)] = remaining
            else:
                self._used.pop((x, y), None)

    def allocate(
        self, cx: int, cy: int, col_kind: str, amount: int
    ) -> List[Tuple[int, int, int]]:
        """Allocate ``amount`` units of ``col_kind`` capacity near (cx, cy).

        Returns [(x, y, units)] chunks.  Raises :class:`PlacementError` when
        the device is out of that resource.
        """
        chunks: List[Tuple[int, int, int]] = []
        remaining = amount
        radius = 0
        for x, y in self.fabric.nearest_tiles(cx, cy, col_kind):
            radius = max(radius, abs(x - cx), abs(y - cy))
            if remaining <= 0:
                break
            taken = self.take(x, y, remaining)
            if taken:
                chunks.append((x, y, taken))
                remaining -= taken
        self.last_search = (cx, cy, radius)
        if remaining > 0:
            raise PlacementError(
                f"device {self.fabric.device.name!r} out of {col_kind} capacity "
                f"({remaining} of {amount} units unplaced)"
            )
        return chunks
