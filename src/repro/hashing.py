"""Canonical hashing — one deterministic digest recipe for every cacheable
artifact in the repository.

Both persistent caches key their entries by content, not by position:

* :mod:`repro.delay.cache` identifies a calibration table by its
  *provenance* (device, seed, smoothing, format version);
* :mod:`repro.service` identifies a flow-compilation request by everything
  that can change its result (design, builder params, optimization config,
  clock target, seed, calibration provenance) and a finished
  :class:`~repro.flow.FlowResult` by its stable outputs.

All of them funnel through :func:`content_digest` so the recipe is written
exactly once.  Two properties matter:

1. **Process independence.**  Python's builtin ``hash()`` is salted per
   process (``PYTHONHASHSEED``); these digests must name files shared
   between a daemon, its worker processes, and later sessions, so they are
   SHA-256 over a canonical JSON encoding instead.
2. **Canonical encoding.**  Keys are sorted, separators are fixed, ASCII
   is forced, and only JSON-expressible values (plus tuples) are accepted
   — anything else raises instead of silently hashing ``repr`` noise that
   could differ between runs.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["canonical_json", "content_digest"]


def _reject_unknown(value: Any) -> Any:
    raise TypeError(
        f"refusing to hash non-canonical value of type {type(value).__name__}: "
        f"{value!r} (convert it to plain str/int/float/bool/None/list/dict first)"
    )


def canonical_json(obj: Any) -> str:
    """The canonical JSON encoding of ``obj``.

    Deterministic across processes and sessions: sorted keys, fixed
    separators, ASCII-only.  Tuples encode as lists (``json`` does this
    natively); any value JSON cannot express raises ``TypeError`` rather
    than degrading to an unstable ``repr``.
    """
    _check_keys(obj)
    return json.dumps(
        obj,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
        default=_reject_unknown,
    )


def _check_keys(obj: Any) -> None:
    """Reject non-string dict keys: ``json`` would coerce them (``1`` and
    ``"1"`` collide) and ``sort_keys`` across mixed types is py-version
    dependent — both break digest stability."""
    if isinstance(obj, dict):
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"canonical JSON requires str keys, got {type(key).__name__}: {key!r}"
                )
            _check_keys(value)
    elif isinstance(obj, (list, tuple)):
        for item in obj:
            _check_keys(item)


def content_digest(obj: Any) -> str:
    """Hex SHA-256 of :func:`canonical_json`\\ ``(obj)`` — the one digest
    recipe shared by the calibration cache and the flow service."""
    return hashlib.sha256(canonical_json(obj).encode("ascii")).hexdigest()
