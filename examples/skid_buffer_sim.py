#!/usr/bin/env python3
"""Skid-buffer control, demonstrated cycle by cycle (§4.3).

Simulates a depth-8 pipeline under bursty back-pressure with both control
schemes and shows the paper's three claims executably:

1. identical output streams;
2. identical throughput;
3. the N+1 sizing rule — depth N overflows, depth N+1 never does (and the
   bound is tight: occupancy reaches exactly N+1).

Run:  python examples/skid_buffer_sim.py
"""

from repro.errors import FifoOverflowError
from repro.sim.harness import BackpressureSink, compare_control_schemes
from repro.sim.pipeline import SkidPipeline, simulate

DEPTH = 8
ITEMS = list(range(500))


def main() -> None:
    print(f"pipeline depth N = {DEPTH}, {len(ITEMS)} items\n")

    print("== claim 1+2: same outputs, same throughput ==")
    for name, ready in [
        ("sink always ready ", BackpressureSink.always()),
        ("sink ready 1/3    ", BackpressureSink.duty(1, 3)),
        ("random 50% ready  ", BackpressureSink.random(0.5, seed=42)),
        ("bursty stalls     ", BackpressureSink.burst_stall(50, 20)),
    ]:
        stall_out, skid_out, stall_cycles, skid_cycles = compare_control_schemes(
            DEPTH, ITEMS, ready, fn=lambda x: x * x
        )
        print(
            f"  {name}: outputs equal={stall_out == skid_out}"
            f"  stall={stall_cycles} cycles, skid={skid_cycles} cycles"
        )

    print("\n== claim 3: the N+1 rule (with the paper's literal read gate) ==")
    adversary = BackpressureSink.burst_stall(60, 25)
    for capacity in (DEPTH, DEPTH + 1):
        pipeline = SkidPipeline(DEPTH, skid_depth=capacity, gate="lagged")
        try:
            out, _cycles = simulate(pipeline, ITEMS, adversary)
            print(
                f"  skid depth {capacity} (= N{'+1' if capacity > DEPTH else ''}):"
                f" OK, max occupancy {pipeline.skid.max_occupancy}"
            )
        except FifoOverflowError as exc:
            print(f"  skid depth {capacity} (= N):   OVERFLOW — {exc}")

    print(
        "\nwhy +1: the buffer's empty flag deasserts one cycle after the\n"
        "first element lands, so one extra in-flight element must fit."
    )


if __name__ == "__main__":
    main()
