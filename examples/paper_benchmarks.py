#!/usr/bin/env python3
"""Run any of the paper's nine benchmark designs from the command line.

    python examples/paper_benchmarks.py               # list designs
    python examples/paper_benchmarks.py genome        # orig vs full opt
    python examples/paper_benchmarks.py stencil --configs orig,skid_minarea
    python examples/paper_benchmarks.py hbm_stencil --ports 12

Any design parameter can be overridden with --<param> <value> (integers).
"""

import argparse
import sys

from repro import Flow
from repro.analysis import diagnose
from repro.control.styles import ControlStyle
from repro.designs import build_design, design_names
from repro.experiments.paper_data import TABLE1
from repro.opt import BASELINE, CTRL_ONLY, DATA_ONLY, FULL, OptimizationConfig

CONFIGS = {
    "orig": BASELINE,
    "data": DATA_ONLY,
    "ctrl": CTRL_ONLY,
    "full": FULL,
    "skid": OptimizationConfig(control=ControlStyle.SKID),
    "skid_minarea": OptimizationConfig(control=ControlStyle.SKID_MINAREA),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("design", nargs="?", help="design name (omit to list)")
    parser.add_argument(
        "--configs", default="orig,full", help="comma list of " + "/".join(CONFIGS)
    )
    parser.add_argument("--seed", type=int, default=2020)
    args, extra = parser.parse_known_args(argv)

    if args.design is None:
        print("available designs (Table 1 order):")
        for name in design_names():
            row = TABLE1[name]
            print(
                f"  {name:18s} {row.broadcast_type:20s} paper "
                f"{row.freq[0]}->{row.freq[1]} MHz"
            )
        return 0

    params = {}
    key = None
    for token in extra:
        if token.startswith("--"):
            key = token[2:]
        elif key is not None:
            params[key] = int(token)
            key = None

    design = build_design(args.design, **params)
    flow = Flow(seed=args.seed)
    paper = TABLE1.get(args.design)
    if paper:
        print(f"paper reports: {paper.freq[0]} -> {paper.freq[1]} MHz\n")
    for label in args.configs.split(","):
        config = CONFIGS[label.strip()]
        result = flow.run(design, config)
        print(result.summary())
        for line in diagnose(result.timing)[:1]:
            print("   worst:", line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
