#!/usr/bin/env python3
"""Flow-compilation service, end to end in one script.

Starts the daemon on a private event loop (exactly what ``repro serve``
runs), then plays the three request paths against it over HTTP:

1. a **cold** submission — queued, compiled in a worker process, and the
   result written into the content-addressed store;
2. a **coalesced** burst — four clients submit the identical request at
   once, and the daemon's counters prove only one compile happened;
3. a **warm** submission — the same request once more, served straight
   from the store without spawning a worker.

Finally the full :class:`~repro.flow.FlowResult` is rehydrated from the
store by digest — the HTTP surface only ever carries light JSON records.

Run with ``PYTHONPATH=src python examples/service_demo.py``.
"""

from __future__ import annotations

import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

from repro.service import ResultStore, ServiceClient, serve_in_thread


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-service-demo-")
    with serve_in_thread(
        store=ResultStore(f"{workdir}/results"),
        quarantine_dir=f"{workdir}/quarantine",
        workers=2,
    ) as server:
        client = ServiceClient(server.host, server.port)
        client.wait_ready()
        print(f"daemon up at http://{server.host}:{server.port}\n")

        # 1. Cold: a real compile in a worker process.
        start = time.perf_counter()
        cold = client.submit("matmul", config="full", wait=True)
        print(
            f"cold submit : {cold['state']} via {cold['served_from']} "
            f"in {time.perf_counter() - start:.2f}s  "
            f"Fmax={cold['summary']['fmax_mhz']:.0f}MHz"
        )

        # 2. Coalesced: four concurrent identical submissions of a NEW
        # request share one compile.
        def submit(_i):
            return ServiceClient(server.host, server.port).submit(
                "face_detection", config="orig", wait=True
            )

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=4) as pool:
            burst = list(pool.map(submit, range(4)))
        assert len({r["result_digest"] for r in burst}) == 1
        print(
            f"burst of 4  : all done in {time.perf_counter() - start:.2f}s, "
            f"one shared result digest"
        )

        # 3. Warm: the first request again — a pure store hit.
        start = time.perf_counter()
        warm = client.submit("matmul", config="full", wait=True)
        print(
            f"warm submit : served from {warm['submitted_as']} "
            f"in {(time.perf_counter() - start) * 1e3:.1f}ms"
        )

        counters = client.status()["metrics"]["counters"]
        print(
            f"\ncounters    : compiles={counters['service.compiles']:.0f} "
            f"coalesced={counters.get('service.coalesced', 0):.0f} "
            f"result_hits={counters.get('service.result_hits', 0):.0f}"
        )

        # The store holds the full FlowResult, addressable by digest.
        result = client.load_result(cold["digest"], store=server.service.store)
        print(
            f"rehydrated  : {result.design} [{result.config_label}] "
            f"Fmax={result.fmax_mhz:.0f}MHz, "
            f"{len(result.gen.netlist.cells)} cells"
        )
        assert result.result_digest() == cold["result_digest"]


if __name__ == "__main__":
    main()
