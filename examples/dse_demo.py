#!/usr/bin/env python3
"""Design-space exploration, end to end in one script.

1. Applies one transform by hand and shows the interp-equivalence check
   every transform in the library must pass;
2. runs a small seeded search over ``plan × config × clock`` points on
   the genome benchmark and prints the leaderboard — generation 0 is the
   six named configs, so the winner is never worse than the hand-tuned
   ``full`` point;
3. re-runs the identical search to show the report (winner digest
   included) is deterministic.

Run with ``PYTHONPATH=src python examples/dse_demo.py``.
"""

from __future__ import annotations

from repro.designs import build_design
from repro.dse import explore
from repro.ir.transforms import TransformPlan, all_candidates, equivalence_diffs

GENOME = {"unroll": 16}


def main() -> None:
    # 1. The transform library: named, parameterized, equivalence-checked.
    design = build_design("genome", **GENOME)
    candidates = all_candidates(design)
    print(f"genome offers {len(candidates)} transform candidates:")
    for transform in candidates[:6]:
        name, params = transform.spec()
        print(f"  {name} {params}")

    plan = TransformPlan.from_spec([["unroll", {"loop": "back_search", "factor": 4}]])
    diffs = equivalence_diffs(design, plan.apply(design), max_cycles=20_000)
    print(f"\nunroll(back_search, 4) interp-equivalent: {not diffs}")

    # 2. A budgeted search.  Duplicate points, identical lowerings and
    # signal-dominated candidates never pay for a compile.
    report = explore(
        "genome", params=GENOME, backend="inline", budget=14, seed=2020,
        max_generations=2,
    )
    print()
    print(report.summary())

    full = next(
        e for e in report.evaluations
        if e.generation == 0 and e.point.config_label == "full"
    )
    print(
        f"\nhand-tuned full: {full.fmax_mhz:.0f} MHz -> "
        f"searched winner: {report.winner.fmax_mhz:.0f} MHz"
    )
    assert report.winner.fmax_mhz >= full.fmax_mhz

    # 3. Determinism: same (design, seed, budget) => same report.
    again = explore(
        "genome", params=GENOME, backend="inline", budget=14, seed=2020,
        max_generations=2,
    )
    same = again.winner.digest == report.winner.digest
    print(f"re-run winner digest identical: {same}")
    assert same


if __name__ == "__main__":
    main()
