#!/usr/bin/env python3
"""Broadcast linting: find the implicit broadcasts in a design before
synthesis, then watch the scheduler's view diverge from reality.

Uses the paper's flagship case — the genome sequencing chain kernel
(Fig. 13) — and shows:

* the §3 classification of its broadcast structures at the IR level;
* the baseline schedule report (what Vivado HLS would print);
* the chain-delay audit: where the broadcast-blind schedule is wrong.

Run:  python examples/diagnose_broadcasts.py
"""

from repro import CalibratedDelayModel, build_default_calibration
from repro.analysis import classify_design
from repro.delay.hls_model import HlsDelayModel
from repro.designs import build_design
from repro.ir.passes import apply_pragmas
from repro.scheduling.broadcast_aware import audit_chains
from repro.scheduling.chaining import ChainingScheduler
from repro.scheduling.report import emit_report


def main() -> None:
    design = build_design("genome", unroll=64)

    print("== §3 broadcast classification (source level) ==")
    report = classify_design(design)
    for record in report.sorted()[:8]:
        print(" ", record)

    print("\n== baseline schedule (broadcast-blind, like Vivado HLS) ==")
    lowered = apply_pragmas(design)
    loop = next(l for _k, l in lowered.all_loops() if l.name == "back_search")
    clock_ns = 1000.0 / float(design.meta["clock_mhz"])
    schedule = ChainingScheduler(HlsDelayModel(), clock_ns).schedule(loop.body)
    text = emit_report(schedule)
    print("\n".join(text.splitlines()[:12]))
    print(f"  ... ({len(text.splitlines())} report lines total)")

    print("\n== §4.1 audit: re-time the chains with calibrated delays ==")
    table = build_default_calibration(design.device)
    model = CalibratedDelayModel(table)
    violations = audit_chains(schedule, model)
    print(f"{len(violations)} chain violations the HLS tool cannot see:")
    for violation in violations[:5]:
        print(" ", violation)
    if len(violations) > 5:
        print(f"  ... and {len(violations) - 5} more")


if __name__ == "__main__":
    main()
