#!/usr/bin/env python3
"""Quickstart: build a small HLS design, run the flow, fix its broadcasts.

This walks the full user journey in ~60 lines:

1. describe a design with the IR builder (a stream written into a large
   on-chip buffer — Fig. 18 of the paper);
2. run the baseline flow: the implicit data + control broadcasts cap Fmax;
3. read the critical-path diagnosis;
4. re-run with the paper's optimizations and compare.

Run:  python examples/quickstart.py
"""

from repro import BASELINE, FULL, Buffer, Design, DFGBuilder, Fifo, Flow, Kernel, Loop
from repro.analysis import diagnose, format_critical_path
from repro.ir.types import i32


def build_my_design() -> Design:
    """A two-loop stream buffer: write a stream into BRAM, read it back."""
    design = Design("quickstart", device="aws-f1", meta={"clock_mhz": 300})
    in_fifo = design.add_fifo(Fifo("in_stream", i32, depth=16, external=True))
    out_fifo = design.add_fifo(Fifo("out_stream", i32, depth=16, external=True))
    # 512K words -> hundreds of BRAM36 banks: an implicit memory broadcast.
    big = design.add_buffer(Buffer("frame", i32, depth=512 * 1024))

    writer = DFGBuilder("write_body")
    idx_w = writer.input("i", i32)
    writer.store(big, idx_w, writer.fifo_read(in_fifo))

    reader = DFGBuilder("read_body")
    idx_r = reader.input("j", i32)
    reader.fifo_write(out_fifo, reader.load(big, idx_r))

    kernel = design.add_kernel(Kernel("stream_kernel"))
    kernel.add_loop(Loop("fill", writer.build(), trip_count=512 * 1024, pipeline=True))
    kernel.add_loop(Loop("drain", reader.build(), trip_count=512 * 1024, pipeline=True))
    design.verify()
    return design


def main() -> None:
    design = build_my_design()
    flow = Flow()  # builds the §4.1 calibration on first use (cached)

    print("== baseline (what the HLS tool gives you) ==")
    orig = flow.run(design, BASELINE)
    print(orig.summary())
    print(format_critical_path(orig.timing))
    print("\ndiagnosis:")
    for line in diagnose(orig.timing):
        print(" *", line)

    print("\n== optimized (broadcast-aware + sync pruning + min-area skid) ==")
    opt = flow.run(design, FULL)
    print(opt.summary())
    for edit in opt.schedule_edits:
        print(" edit:", edit)

    gain = (opt.fmax_mhz / orig.fmax_mhz - 1) * 100
    print(f"\nFmax: {orig.fmax_mhz:.0f} MHz -> {opt.fmax_mhz:.0f} MHz ({gain:+.0f}%)")


if __name__ == "__main__":
    main()
