#!/usr/bin/env python3
"""Reproduce the §4.1 calibration methodology on one operator.

Builds skeleton broadcast designs (one source register feeding K adders),
measures post-placement delay at each broadcast factor, applies the
paper's neighbor smoothing and max-with-prediction rule, and prints an
ASCII rendering of the resulting Fig. 9 panel.

Run:  python examples/calibration_study.py
"""

from repro.delay.calibrated import CalibrationTable
from repro.delay.calibration import characterize_operator
from repro.delay.tables import hls_predicted_delay
from repro.ir.ops import Opcode
from repro.ir.types import i32

FACTORS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def bar(value: float, scale: float = 8.0) -> str:
    return "#" * max(1, int(value * scale))


def main() -> None:
    print("characterizing int32 ADD skeletons (this places ~2k cells)...")
    points = characterize_operator(Opcode.ADD, i32, FACTORS)

    table = CalibrationTable()
    for factor, delay in points:
        table.add("add_i32", factor, delay)
    smoothed = table.smoothed()

    predicted = hls_predicted_delay(Opcode.ADD, i32)
    print(f"\nHLS-predicted delay (flat): {predicted:.2f} ns\n")
    print(f"{'factor':>7s} {'measured':>9s} {'calibrated':>11s}  curve")
    for factor, raw in points:
        cal = max(predicted, smoothed.lookup("add_i32", factor))
        print(f"{factor:7d} {raw:9.2f} {cal:11.2f}  {bar(cal)}")

    at64 = smoothed.lookup("add_i32", 64)
    print(
        f"\npaper anchor (§5.2): predicted 0.78 ns vs ~2.08 ns actual at"
        f" broadcast factor 64; we measure {at64:.2f} ns"
    )
    print(
        "\nThe calibrated model is max(predicted, smooth(measured)) — drop"
        " it into CalibratedDelayModel and the scheduler splits these"
        " chains automatically."
    )


if __name__ == "__main__":
    main()
