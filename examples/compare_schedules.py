#!/usr/bin/env python3
"""Visualize what broadcast-aware scheduling actually changes.

Builds an unrolled broadcast kernel, schedules it twice — with the
broadcast-blind HLS model and with the calibrated model — and renders both
schedules as ASCII Gantt charts.  The optimized chart shows the broadcast
consumers pushed out of the overloaded cycle ("inserting register modules
... equivalent to forcing the scheduler to split the operations into
different cycles", §4.1).

Also demonstrates the functional interpreter: both schedules compute the
same values, because scheduling only moves work in time.

Run:  python examples/compare_schedules.py
"""

from repro import CalibratedDelayModel, build_default_calibration
from repro.delay.hls_model import HlsDelayModel
from repro.ir.builder import DFGBuilder
from repro.ir.interp import Evaluator
from repro.ir.passes import unroll_loop
from repro.ir.program import Loop
from repro.ir.types import i32
from repro.scheduling.chaining import ChainingScheduler
from repro.scheduling.gantt import render_gantt

CLOCK_NS = 3.0
UNROLL = 32


def build_kernel():
    b = DFGBuilder("kernel")
    anchor = b.input("anchor", i32, loop_invariant=True)
    sample = b.input("sample", i32)
    dist = b.sub(sample, anchor, name="dist")
    clipped = b.max_(dist, b.const(0, i32), name="clipped")
    score = b.add(clipped, b.const(7, i32), name="score")
    return Loop("l", b.build(), trip_count=UNROLL, unroll=UNROLL)


def main() -> None:
    dfg = unroll_loop(build_kernel()).body

    hls_schedule = ChainingScheduler(HlsDelayModel(), CLOCK_NS).schedule(dfg.clone())
    print("== baseline schedule (HLS model: broadcast factor invisible) ==")
    print(render_gantt(hls_schedule, max_ops=10))

    calibrated = CalibratedDelayModel(build_default_calibration("aws-f1"))
    cal_schedule = ChainingScheduler(calibrated, CLOCK_NS).schedule(dfg)
    print("\n== broadcast-aware schedule (calibrated model) ==")
    print(render_gantt(cal_schedule, max_ops=10))

    print(
        f"\ndepth {hls_schedule.depth} -> {cal_schedule.depth} "
        f"(the broadcast sub chain is split across cycles)"
    )

    # Scheduling never changes semantics — the interpreter confirms.
    inputs = {"anchor": 5, **{f"sample#{k}": 10 + k for k in range(UNROLL)}}
    env = Evaluator().run(dfg, inputs=inputs)
    assert all(env[f"score#{k}"] == (10 + k - 5) + 7 for k in range(UNROLL))
    print("functional check passed: all unrolled copies compute (sample-anchor)+7")


if __name__ == "__main__":
    main()
