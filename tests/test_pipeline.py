"""Staged pass pipeline: digests, the artifact store, and partial re-runs."""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import ReproError
from repro.flow import Flow
from repro.ir.program import Design
from repro.opt import BASELINE, FULL
from repro.pipeline import (
    MemoryStageStore,
    Stage,
    StageArtifactStore,
    build_stages,
    design_digest,
    encode_outputs,
    table_digest,
)
from repro.pipeline import stages as stages_mod

from conftest import make_mini_stream_design, make_synthetic_table


def _counter_values(tracer, skip_prefix="pipeline."):
    """Aggregated counters minus the pipeline bookkeeping ones."""
    return {
        name: counter.value
        for name, counter in tracer.aggregate_metrics().counters.items()
        if not name.startswith(skip_prefix)
    }


class TestDesignDigest:
    def test_stable_across_rebuilds(self):
        a = design_digest(make_mini_stream_design(depth=4096))
        b = design_digest(make_mini_stream_design(depth=4096))
        assert a == b

    def test_sensitive_to_parameters(self):
        a = design_digest(make_mini_stream_design(depth=4096))
        b = design_digest(make_mini_stream_design(depth=8192))
        assert a != b

    def test_sensitive_to_meta(self):
        design = make_mini_stream_design(depth=4096)
        before = design_digest(design)
        design.meta["clock_mhz"] = 123.0
        assert design_digest(design) != before

    def test_table_digest_tracks_content(self, synthetic_table):
        assert table_digest(synthetic_table) == table_digest(synthetic_table)
        # Same generator → same content digest regardless of instance.
        assert table_digest(make_synthetic_table()) == table_digest(
            synthetic_table
        )


class TestStageDigest:
    def test_chains_input_digests(self):
        stage = stages_mod.SyncPruningStage()
        a = stage.input_digest({"enabled": True}, {"lowered": "d1"})
        b = stage.input_digest({"enabled": True}, {"lowered": "d2"})
        c = stage.input_digest({"enabled": False}, {"lowered": "d1"})
        assert len({a, b, c}) == 3

    def test_missing_producer_is_loud(self):
        stage = stages_mod.SchedulingStage()
        with pytest.raises(ReproError, match="cal_table"):
            stage.input_digest({}, {"lowered": "d1"})

    def test_dag_is_closed(self):
        """Every stage's inputs are produced by an earlier stage (or are
        flow-level context keys)."""
        produced = {"design"}
        for stage in build_stages():
            for key in stage.inputs:
                assert key in produced, f"{stage.name} consumes unproduced {key}"
            produced.update(stage.outputs)


class TestStageArtifactStore:
    def test_roundtrip(self, tmp_path):
        store = StageArtifactStore(root=str(tmp_path / "stages"))
        payload = encode_outputs("demo", {"x": [1, 2, 3]})
        store.put("d" * 8, payload, {"stage": "demo"})
        hit = store.get("d" * 8)
        assert hit is not None
        assert hit.stage == "demo"
        assert hit.load() == {"x": [1, 2, 3]}

    def test_miss_is_none(self, tmp_path):
        store = StageArtifactStore(root=str(tmp_path / "stages"))
        assert store.get("nope") is None

    def test_corrupt_sidecar_is_a_miss(self, tmp_path):
        root = tmp_path / "stages"
        store = StageArtifactStore(root=str(root))
        store.put("e" * 8, encode_outputs("demo", {}), {"stage": "demo"})
        (root / ("e" * 8 + ".json")).write_text("{not json")
        assert store.get("e" * 8) is None

    def test_lru_eviction(self, tmp_path):
        store = StageArtifactStore(root=str(tmp_path / "stages"), max_entries=2)
        import time as _time

        for i, digest in enumerate(("aa", "bb", "cc")):
            evicted = store.put(
                digest, encode_outputs("demo", {"i": i}), {"stage": "demo"}
            )
            _time.sleep(0.01)
        assert evicted == 1
        assert store.get("aa") is None  # oldest gone
        assert store.get("cc") is not None
        assert len(store) == 2

    def test_empty_store_is_truthy(self, tmp_path):
        assert bool(StageArtifactStore(root=str(tmp_path / "s")))
        assert bool(MemoryStageStore())

    def test_memory_store_hands_out_fresh_copies(self):
        store = MemoryStageStore()
        store.put("aa", encode_outputs("demo", {"x": [1]}), {"stage": "demo"})
        first = store.get("aa").load()
        second = store.get("aa").load()
        assert first == second
        assert first["x"] is not second["x"]


class TestPartialReexecution:
    def test_warm_run_skips_every_cacheable_stage(self, tmp_path, synthetic_table):
        store = StageArtifactStore(root=str(tmp_path / "stages"))
        flow = Flow(calibration=synthetic_table, stage_cache=store)
        cold = flow.run(make_mini_stream_design(depth=4096), FULL)
        # A fresh flow instance has no warm in-process state (no
        # incremental overlay), so every hit must come from disk.
        warm_flow = Flow(calibration=synthetic_table, stage_cache=store)
        warm = warm_flow.run(make_mini_stream_design(depth=4096), FULL)
        assert all(j["action"] == "run" for j in cold.journal)
        for entry in warm.journal:
            if entry["cacheable"]:
                assert entry["action"] == "skipped", entry
                assert entry["source"] == "disk"
            else:
                assert entry["action"] == "run"
        assert warm.fingerprint() == cold.fingerprint()
        assert warm.result_digest() == cold.result_digest()

    def test_warm_trace_replays_cold_counters(self, tmp_path, synthetic_table):
        store = StageArtifactStore(root=str(tmp_path / "stages"))
        flow = Flow(calibration=synthetic_table, stage_cache=store)
        with obs.activate(obs.Tracer()) as cold_tracer:
            flow.run(make_mini_stream_design(depth=4096), FULL)
        with obs.activate(obs.Tracer()) as warm_tracer:
            result = flow.run(make_mini_stream_design(depth=4096), FULL)
        assert _counter_values(warm_tracer) == _counter_values(cold_tracer)
        skipped = warm_tracer.aggregate_metrics().counters[
            "pipeline.stages_skipped"
        ]
        assert skipped.value == sum(1 for j in result.journal if j["cacheable"])
        # Replayed stage spans are flagged; their children carry the
        # original cost as an attribute.
        (sched,) = [
            s for s in warm_tracer.roots[0].children if s.name == "scheduling"
        ]
        assert sched.attrs["cached"] is True
        assert all("cached_duration_ms" in c.attrs for c in sched.children)

    def test_config_change_invalidates_only_downstream(
        self, tmp_path, synthetic_table
    ):
        store = StageArtifactStore(root=str(tmp_path / "stages"))
        flow = Flow(calibration=synthetic_table, stage_cache=store)
        flow.run(make_mini_stream_design(depth=4096), BASELINE)
        # FULL shares only the pragma front-end with BASELINE (sync-pruning
        # flips on); everything downstream must re-run.
        second = flow.run(make_mini_stream_design(depth=4096), FULL)
        by_stage = {j["stage"]: j["action"] for j in second.journal}
        assert by_stage["pragmas"] == "skipped"
        assert by_stage["scheduling"] == "run"
        assert by_stage["timing"] == "run"

    def test_design_change_invalidates_everything(self, tmp_path, synthetic_table):
        store = StageArtifactStore(root=str(tmp_path / "stages"))
        flow = Flow(calibration=synthetic_table, stage_cache=store)
        flow.run(make_mini_stream_design(depth=4096), FULL)
        second = flow.run(make_mini_stream_design(depth=8192), FULL)
        assert all(j["action"] == "run" for j in second.journal)

    def test_stage_cache_off_never_stores(self, tmp_path, synthetic_table):
        # incremental=False too: otherwise the per-flow overlay (in-process
        # only, independent of the stage-cache policy) serves the re-run.
        flow = Flow(
            calibration=synthetic_table, stage_cache=False, incremental=False
        )
        first = flow.run(make_mini_stream_design(depth=4096), FULL)
        second = flow.run(make_mini_stream_design(depth=4096), FULL)
        assert all(j["action"] == "run" for j in first.journal + second.journal)
        assert second.fingerprint() == first.fingerprint()

    def test_stage_cache_off_incremental_overlay_still_reuses(
        self, synthetic_table
    ):
        # The incremental overlay is orthogonal to the artifact store: with
        # the store off, an identical re-run on the same flow instance is
        # served wholly from memory, bit-identically.
        flow = Flow(
            calibration=synthetic_table, stage_cache=False, incremental=True
        )
        first = flow.run(make_mini_stream_design(depth=4096), FULL)
        second = flow.run(make_mini_stream_design(depth=4096), FULL)
        assert all(j["action"] == "run" for j in first.journal)
        assert all(
            j["action"] == "skipped" and j["source"] == "overlay"
            for j in second.journal
            if j["cacheable"]
        )
        assert second.fingerprint() == first.fingerprint()
        assert second.result_digest() == first.result_digest()


class TestCompareSharing:
    def test_compare_verifies_and_lowers_exactly_once(
        self, tmp_path, synthetic_table, monkeypatch
    ):
        calls = {"verify": 0, "apply_pragmas": 0}
        real_apply = stages_mod.apply_pragmas

        def counting_apply(design):
            calls["apply_pragmas"] += 1
            return real_apply(design)

        monkeypatch.setattr(stages_mod, "apply_pragmas", counting_apply)
        # Count verification of *this* design (builders and pragma
        # lowering verify their own intermediate designs too).
        design = make_mini_stream_design(depth=4096)
        real_verify = design.verify

        def counting_verify():
            calls["verify"] += 1
            return real_verify()

        design.verify = counting_verify
        store = StageArtifactStore(root=str(tmp_path / "stages"))
        flow = Flow(calibration=synthetic_table, stage_cache=store)
        orig, opt = flow.compare(design)
        assert calls == {"verify": 1, "apply_pragmas": 1}
        assert orig.config_label == BASELINE.label
        assert opt.config_label == FULL.label

    def test_compare_matches_uncached_fingerprints(self, tmp_path, synthetic_table):
        store = StageArtifactStore(root=str(tmp_path / "stages"))
        cached = Flow(calibration=synthetic_table, stage_cache=store)
        plain = Flow(calibration=synthetic_table, stage_cache=False)
        with obs.activate(obs.Tracer()) as tracer:
            c_orig, c_opt = cached.compare(make_mini_stream_design(depth=4096))
        p_orig, p_opt = plain.compare(make_mini_stream_design(depth=4096))
        assert c_orig.fingerprint() == p_orig.fingerprint()
        assert c_opt.fingerprint() == p_opt.fingerprint()
        counters = tracer.aggregate_metrics().counters
        assert counters["pipeline.stages_skipped"].value > 0

    def test_compare_shares_frontend_without_disk(self, synthetic_table):
        """The in-process overlay alone (cold private disk store) is enough
        for the second run to reuse the shared front-end."""
        flow = Flow(calibration=synthetic_table, stage_cache=True)
        with obs.activate(obs.Tracer()):
            orig, opt = flow.compare(make_mini_stream_design(depth=2048))
        by_stage = {j["stage"]: j for j in opt.journal}
        assert by_stage["pragmas"]["action"] == "skipped"


class TestCalibrationMemo:
    def test_resolution_happens_once_per_flow(self, monkeypatch, synthetic_table):
        calls = []

        def fake_resolve(device, seed=2020, smooth_passes=1, path=None):
            calls.append((device, seed, smooth_passes, path))
            return synthetic_table, "built"

        monkeypatch.setattr("repro.flow.resolve_calibration", fake_resolve)
        flow = Flow(stage_cache=False)
        flow.run(make_mini_stream_design(depth=2048), FULL)
        flow.run(make_mini_stream_design(depth=4096), FULL)
        assert len(calls) == 1

    def test_memo_reports_original_source(self, monkeypatch, synthetic_table):
        monkeypatch.setattr(
            "repro.flow.resolve_calibration",
            lambda device, seed=2020, smooth_passes=1, path=None: (
                synthetic_table,
                "built",
            ),
        )
        flow = Flow(stage_cache=False)
        with obs.activate(obs.Tracer()) as tracer:
            flow.run(make_mini_stream_design(depth=2048), FULL)
            flow.run(make_mini_stream_design(depth=2048), FULL)
        sources = [
            span.attrs["source"]
            for root in tracer.roots
            for span in root.children
            if span.name == "calibration"
        ]
        assert sources == ["built", "built"]


class TestSweepSharing:
    def test_inline_sweep_skips_shared_stages(self, tmp_path, synthetic_table):
        from repro.experiments.sweep import sweep

        store = StageArtifactStore(root=str(tmp_path / "stages"))
        flow = Flow(calibration=synthetic_table, stage_cache=store)
        with obs.activate(obs.Tracer()) as tracer:
            result = sweep(
                make_mini_stream_design,
                "depth",
                [2048, 4096],
                configs={"orig": BASELINE, "full": FULL},
                flow=flow,
            )
        counters = tracer.aggregate_metrics().counters
        assert counters["pipeline.stages_skipped"].value > 0
        plain = sweep(
            make_mini_stream_design,
            "depth",
            [2048, 4096],
            configs={"orig": BASELINE, "full": FULL},
            flow=Flow(calibration=synthetic_table, stage_cache=False),
        )
        for cached_row, plain_row in zip(result.rows, plain.rows):
            for label in cached_row.results:
                assert (
                    cached_row.results[label].fingerprint()
                    == plain_row.results[label].fingerprint()
                )
