"""Prometheus text exposition: every emitted line must round-trip.

The contract under test is the one ``GET /metrics`` relies on: any
off-the-shelf scraper (here: our own :func:`parse_exposition`) can parse
the full document, label values survive escaping, and an empty registry
still yields a well-formed document.
"""

from __future__ import annotations

import pytest

from repro.obs.exposition import (
    CONTENT_TYPE,
    ExpositionParseError,
    Family,
    Sample,
    escape_label_value,
    metric_name,
    parse_exposition,
    render_exposition,
)
from repro.obs.metrics import MetricsRegistry


def _full_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.add("service.submitted", 4)
    registry.add("service.compiles")
    registry.set_gauge("service.queue_depth", 2)
    registry.set_gauge("service.fmax_mhz", 301.25)
    for value in (0.1, 0.2, 0.3, 0.4, 0.5):
        registry.observe("service.compile_latency_s", value)
    return registry


class TestRenderRoundTrip:
    def test_every_line_parses(self):
        text = render_exposition(_full_registry())
        doc = parse_exposition(text)  # raises on any malformed line
        assert doc.samples

    def test_counter_total_suffix_and_value(self):
        doc = parse_exposition(render_exposition(_full_registry()))
        assert doc.value("repro_service_submitted_total") == 4
        assert doc.types["repro_service_submitted_total"] == "counter"

    def test_gauge_value(self):
        doc = parse_exposition(render_exposition(_full_registry()))
        assert doc.value("repro_service_queue_depth") == 2
        assert doc.value("repro_service_fmax_mhz") == pytest.approx(301.25)

    def test_histogram_becomes_summary_with_exact_count_sum(self):
        doc = parse_exposition(render_exposition(_full_registry()))
        name = "repro_service_compile_latency_s"
        assert doc.types[name] == "summary"
        assert doc.value(f"{name}_count") == 5
        assert doc.value(f"{name}_sum") == pytest.approx(1.5)
        assert doc.value(name, (("quantile", "0.5"),)) == pytest.approx(0.3)
        assert doc.value(f"{name}_min") == pytest.approx(0.1)
        assert doc.value(f"{name}_max") == pytest.approx(0.5)

    def test_document_ends_with_newline(self):
        assert render_exposition(_full_registry()).endswith("\n")

    def test_content_type_is_prometheus_004(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestEmptyRegistry:
    def test_empty_registry_is_well_formed(self):
        text = render_exposition(MetricsRegistry())
        assert text.endswith("\n")
        doc = parse_exposition(text)
        assert doc.samples == {}


class TestNamesAndLabels:
    def test_dotted_names_sanitize(self):
        assert metric_name("service.queue_depth") == "repro_service_queue_depth"
        assert metric_name("a-b c.d") == "repro_a_b_c_d"

    @pytest.mark.parametrize(
        "value",
        [
            'plain',
            'with "quotes"',
            "back\\slash",
            "new\nline",
            'all \\ of " it\n together',
        ],
    )
    def test_label_values_round_trip(self, value):
        family = Family(
            name="repro_test_labeled",
            kind="gauge",
            samples=[Sample("repro_test_labeled", 1, labels=(("key", value),))],
        )
        text = render_exposition(MetricsRegistry(), extra_families=[family])
        doc = parse_exposition(text)
        assert doc.value("repro_test_labeled", (("key", value),)) == 1

    def test_escape_label_value(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_multiple_labels_keep_order(self):
        family = Family(
            name="repro_test_lanes",
            kind="gauge",
            samples=[
                Sample("repro_test_lanes", d, labels=(("lane", lane),))
                for lane, d in (("high", 1), ("normal", 2), ("low", 3))
            ],
        )
        doc = parse_exposition(
            render_exposition(MetricsRegistry(), extra_families=[family])
        )
        assert doc.value("repro_test_lanes", (("lane", "normal"),)) == 2


class TestParserRejectsGarbage:
    @pytest.mark.parametrize(
        "line",
        [
            "no_value_here",
            "bad name with spaces 1",
            'metric{unterminated="oops 1',
            "metric not_a_number",
        ],
    )
    def test_malformed_lines_raise(self, line):
        with pytest.raises(ExpositionParseError):
            parse_exposition(line + "\n")

    def test_comments_and_blank_lines_are_fine(self):
        doc = parse_exposition("# HELP x y\n\n# TYPE x counter\nx 1\n")
        assert doc.value("x") == 1
        assert doc.types["x"] == "counter"

    def test_inf_and_nan_values(self):
        doc = parse_exposition("up +Inf\ndown -Inf\n")
        assert doc.value("up") == float("inf")
        assert doc.value("down") == float("-inf")
