"""FlowService: coalescing, backpressure, priority lanes, fault tolerance.

The fault-injection seam is ``FlowService(entry=...)``: the daemon spawns
whatever callable it is given as the worker-process target, so these tests
substitute module-level wrappers around the real
:func:`repro.service.worker.worker_entry` (module-level so they survive
both ``fork`` and ``spawn`` start methods).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time

import pytest

from repro.service.daemon import FlowService, QueueFullError, UnknownJobError
from repro.service.request import FlowRequest
from repro.service.store import ResultStore
from repro.service.worker import execute_request, worker_entry

#: Env vars used to parameterize the module-level entry wrappers (fork and
#: spawn both inherit the environment; closures would not survive spawn).
GATE_ENV = "REPRO_TEST_GATE"
ORDER_ENV = "REPRO_TEST_ORDER"
CRASH_ONCE_ENV = "REPRO_TEST_CRASH_ONCE"


def _gated_entry(request_dict, store_root, conn):
    """Real worker, but it idles while the gate file exists — giving the
    test a window to SIGKILL it mid-'compile'."""
    gate = os.environ.get(GATE_ENV)
    deadline = time.time() + 60
    while gate and os.path.exists(gate) and time.time() < deadline:
        time.sleep(0.02)
    worker_entry(request_dict, store_root, conn)


def _crash_once_entry(request_dict, store_root, conn):
    """Die silently (exit 9) on the first attempt, succeed on the retry."""
    marker = os.environ[CRASH_ONCE_ENV]
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("crashed\n")
        os._exit(9)
    worker_entry(request_dict, store_root, conn)


def _echo_entry(request_dict, store_root, conn):
    """No compile: append the request seed to the order log and succeed."""
    with open(os.environ[ORDER_ENV], "a") as handle:
        handle.write(f"{request_dict['seed']}\n")
    conn.send(
        {
            "ok": True,
            "digest": "stub",
            "result_digest": f"stub-{request_dict['seed']}",
            "summary": {"design": request_dict["design"]},
            "pid": os.getpid(),
        }
    )
    conn.close()


def _hang_entry(request_dict, store_root, conn):
    """Never answer — exercises the per-job deadline."""
    time.sleep(60)


def _service(tmp_path, **kwargs):
    kwargs.setdefault("store", ResultStore(str(tmp_path / "results")))
    kwargs.setdefault("quarantine_dir", str(tmp_path / "quarantine"))
    kwargs.setdefault("backoff_s", 0.01)
    kwargs.setdefault("backoff_cap_s", 0.05)
    return FlowService(**kwargs)


def _run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_duplicate_submissions_share_one_compile(self, tmp_path):
        """The acceptance criterion: N concurrent identical submissions →
        exactly one compile, verified through the obs counters."""

        async def scenario():
            service = _service(tmp_path, workers=2)
            await service.start()
            try:
                request = FlowRequest.make("matmul", config="full")
                job1, how1 = service.submit(request)
                job2, how2 = service.submit(request)  # same digest, in flight
                assert (how1, how2) == ("queued", "coalesced")
                assert job2 is job1
                await service.wait(job1, timeout=180)
                assert job1.state == "done"
                assert job1.served_from == "compile"
                assert job1.coalesced == 1

                # A third submission after completion is a store hit.
                job3, how3 = service.submit(request)
                assert how3 == "store"
                assert job3.finished and job3.state == "done"
                assert job3.result_digest == job1.result_digest

                assert service.counter("service.compiles") == 1
                assert service.counter("service.coalesced") == 1
                assert service.counter("service.result_hits") == 1
                assert service.counter("service.submitted") == 1
            finally:
                await service.stop()

        _run(scenario())

    def test_store_hit_skips_queue_entirely(self, tmp_path):
        async def scenario():
            service = _service(tmp_path, workers=1)
            await service.start()
            try:
                request = FlowRequest.make("matmul", config="orig")
                job, _ = service.submit(request)
                await service.wait(job, timeout=180)
            finally:
                await service.stop()
            # Fresh service over the same store: no dispatchers running,
            # yet the submission completes instantly from the store.
            service2 = _service(tmp_path, workers=1)
            job2, how = service2.submit(request)
            assert how == "store"
            assert job2.state == "done"
            assert job2.result_digest == job.result_digest

        _run(scenario())


class TestFaultTolerance:
    def test_sigkilled_worker_retries_to_same_digest(self, tmp_path, monkeypatch):
        """Kill the worker process mid-job: the daemon must detect the
        corpse, retry, and reproduce the exact result an uninterrupted
        run yields."""
        gate = tmp_path / "gate"
        gate.write_text("hold\n")
        monkeypatch.setenv(GATE_ENV, str(gate))
        request = FlowRequest.make("matmul", config="orig")
        reference_digest = execute_request(request).result_digest()

        async def scenario():
            service = _service(
                tmp_path, workers=1, max_attempts=3, entry=_gated_entry
            )
            await service.start()
            try:
                job, how = service.submit(request)
                assert how == "queued"
                deadline = time.time() + 30
                while job.worker_pid is None and time.time() < deadline:
                    await asyncio.sleep(0.01)
                assert job.worker_pid is not None, "worker never started"
                first_pid = job.worker_pid
                os.kill(first_pid, signal.SIGKILL)
                gate.unlink()  # let the retry run for real
                await service.wait(job, timeout=180)
                assert job.state == "done"
                assert job.attempts == 2
                assert job.worker_pid != first_pid
                assert job.result_digest == reference_digest
                assert service.counter("service.crashes") == 1
                assert service.counter("service.retries") == 1
                assert service.counter("service.compiles") == 1
            finally:
                await service.stop()

        _run(scenario())

    def test_crash_once_then_success(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CRASH_ONCE_ENV, str(tmp_path / "crash-marker"))
        request = FlowRequest.make("matmul", config="orig")

        async def scenario():
            service = _service(
                tmp_path, workers=1, max_attempts=2, entry=_crash_once_entry
            )
            await service.start()
            try:
                job, _ = service.submit(request)
                await service.wait(job, timeout=180)
                assert job.state == "done"
                assert job.attempts == 2
                assert service.counter("service.crashes") == 1
            finally:
                await service.stop()

        _run(scenario())

    def test_hung_worker_times_out_and_quarantines(self, tmp_path):
        request = FlowRequest.make("matmul", config="orig")

        async def scenario():
            service = _service(
                tmp_path, workers=1, max_attempts=2, job_timeout_s=0.3,
                entry=_hang_entry,
            )
            await service.start()
            try:
                job, _ = service.submit(request)
                await service.wait(job, timeout=60)
                assert job.state == "failed"
                assert job.attempts == 2
                assert job.error["error_type"] == "WorkerTimeout"
                assert service.counter("service.timeouts") == 2
                assert service.counter("service.retries") == 1
                assert service.counter("service.quarantined") == 1
                record_path = os.path.join(
                    service.quarantine_dir, f"{job.digest}.json"
                )
                with open(record_path) as handle:
                    record = json.load(handle)
                assert record["schema"] == "repro-quarantine/1"
                assert record["reason"] == "timeout"
                assert record["request"]["design"] == "matmul"
            finally:
                await service.stop()

        _run(scenario())

    def test_poison_job_quarantined_without_retry(self, tmp_path):
        """A flow that raises cleanly is deterministic poison: exactly one
        attempt, straight to quarantine with the structured error."""
        request = FlowRequest.make("matmul", no_such_param=1)

        async def scenario():
            service = _service(tmp_path, workers=1, max_attempts=3)
            await service.start()
            try:
                job, _ = service.submit(request)
                await service.wait(job, timeout=60)
                assert job.state == "failed"
                assert job.attempts == 1  # no retry for deterministic errors
                assert "no_such_param" in job.error["error"]
                assert service.counter("service.quarantined") == 1
                assert service.counter("service.retries") == 0
                record_path = os.path.join(
                    service.quarantine_dir, f"{job.digest}.json"
                )
                with open(record_path) as handle:
                    record = json.load(handle)
                assert record["reason"] == "error"
                assert record["error"]["traceback"]
            finally:
                await service.stop()

        _run(scenario())


class TestQueueSemantics:
    def test_backpressure_rejects_beyond_limit(self, tmp_path):
        async def scenario():
            service = _service(tmp_path, workers=1, queue_limit=2)
            # Not started: nothing drains, so the bound is hit deterministically.
            service.submit(FlowRequest.make("matmul", seed=1))
            service.submit(FlowRequest.make("matmul", seed=2))
            with pytest.raises(QueueFullError, match="full"):
                service.submit(FlowRequest.make("matmul", seed=3))
            assert service.counter("service.rejected") == 1
            # Duplicates of queued work still coalesce — the queue is full,
            # not the digest.
            _, how = service.submit(FlowRequest.make("matmul", seed=1))
            assert how == "coalesced"
            await service.stop()

        _run(scenario())

    def test_priority_lanes_drain_high_first(self, tmp_path, monkeypatch):
        order_log = tmp_path / "order.log"
        monkeypatch.setenv(ORDER_ENV, str(order_log))

        async def scenario():
            service = _service(tmp_path, workers=1, entry=_echo_entry)
            await service.start()
            try:
                # Enqueued back-to-back (no await): the single dispatcher
                # sees all three and must pick lanes in priority order.
                jobs = [
                    service.submit(FlowRequest.make("matmul", seed=1), "low")[0],
                    service.submit(FlowRequest.make("matmul", seed=2), "normal")[0],
                    service.submit(FlowRequest.make("matmul", seed=3), "high")[0],
                ]
                for job in jobs:
                    await service.wait(job, timeout=60)
            finally:
                await service.stop()
            seeds = order_log.read_text().split()
            assert seeds == ["3", "2", "1"]  # high, normal, low

        _run(scenario())

    def test_unknown_design_and_priority_rejected(self, tmp_path):
        async def scenario():
            service = _service(tmp_path)
            with pytest.raises(Exception, match="unknown design"):
                service.submit(FlowRequest.make("not-a-design"))
            with pytest.raises(Exception, match="unknown priority"):
                service.submit(FlowRequest.make("matmul"), priority="urgent")
            with pytest.raises(UnknownJobError):
                service.job("job-9999")
            await service.stop()

        _run(scenario())

    def test_stop_aborts_queued_jobs(self, tmp_path):
        async def scenario():
            service = _service(tmp_path, workers=1)
            job, _ = service.submit(FlowRequest.make("matmul", seed=42))
            await service.stop()
            assert job.state == "aborted"
            assert job.done.is_set()

        _run(scenario())

    def test_snapshot_shape(self, tmp_path):
        async def scenario():
            service = _service(tmp_path, queue_limit=5)
            service.submit(FlowRequest.make("matmul", seed=1), "high")
            snap = service.snapshot()
            assert snap["schema"] == "repro-service-status/1"
            assert snap["queue"]["depth"] == 1
            assert snap["queue"]["limit"] == 5
            assert snap["queue"]["by_priority"]["high"] == 1
            assert snap["inflight"] == 1
            assert len(snap["jobs"]) == 1
            assert snap["metrics"]["counters"]["service.submitted"] == 1
            assert snap["metrics"]["gauges"]["service.queue_depth"] == 1
            await service.stop()

        _run(scenario())
