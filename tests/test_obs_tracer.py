"""Unit tests for the tracing + metrics core (repro.obs)."""

import pytest

from repro import obs
from repro.obs.metrics import Histogram, MetricsRegistry


class TestSpanNesting:
    def test_nested_spans_form_a_tree(self):
        tracer = obs.Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("mid") as mid:
                with tracer.span("inner") as inner:
                    pass
            with tracer.span("mid2"):
                pass
        assert tracer.roots == [outer]
        assert [c.name for c in outer.children] == ["mid", "mid2"]
        assert mid.children == [inner]
        assert inner.parent is mid and mid.parent is outer

    def test_durations_are_monotone(self):
        tracer = obs.Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                sum(range(1000))
        assert outer.end_s is not None and inner.end_s is not None
        assert outer.duration_ms >= inner.duration_ms >= 0.0
        assert outer.start_s <= inner.start_s

    def test_stack_restored_on_exception(self):
        tracer = obs.Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.active_span is None
        # Both spans were still closed.
        assert all(s.end_s is not None for s in tracer.all_spans())

    def test_sequential_roots(self):
        tracer = obs.Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [r.name for r in tracer.roots] == ["a", "b"]

    def test_walk_and_find(self):
        tracer = obs.Tracer()
        with tracer.span("root"):
            with tracer.span("x"):
                with tracer.span("y"):
                    pass
            with tracer.span("y"):
                pass
        root = tracer.roots[0]
        assert [s.name for s in root.walk()] == ["root", "x", "y", "y"]
        assert root.find("y").parent.name == "x"  # pre-order: deepest first
        assert len(root.find_all("y")) == 2
        assert root.find("missing") is None

    def test_attrs_via_kwargs_and_set(self):
        tracer = obs.Tracer()
        with tracer.span("s", cells=10) as sp:
            sp.set("nets", 20)
        assert sp.attrs == {"cells": 10, "nets": 20}


class TestAmbientTracer:
    def test_helpers_are_noops_without_activation(self):
        # Must not raise, must not record anywhere.
        with obs.span("orphan") as sp:
            sp.set("k", 1)
            obs.add("c", 5)
            obs.observe("h", 1.0)
            obs.set_gauge("g", 2)
        assert obs.current_tracer() is obs.NULL_TRACER
        assert not obs.NULL_TRACER.aggregate_metrics()

    def test_activation_routes_helpers(self):
        tracer = obs.Tracer()
        with obs.activate(tracer):
            assert obs.current_tracer() is tracer
            with obs.span("stage"):
                obs.add("n", 2)
        assert obs.current_tracer() is obs.NULL_TRACER
        assert tracer.roots[0].metrics.counter("n") == 2

    def test_nested_activation_innermost_wins(self):
        outer, inner = obs.Tracer(), obs.Tracer()
        with obs.activate(outer):
            with obs.activate(inner):
                with obs.span("s"):
                    pass
            assert obs.current_tracer() is outer
        assert [r.name for r in inner.roots] == ["s"]
        assert outer.roots == []

    def test_metrics_outside_any_span_land_on_tracer(self):
        tracer = obs.Tracer()
        with obs.activate(tracer):
            obs.add("loose", 3)
        assert tracer.metrics.counter("loose") == 3
        assert tracer.aggregate_metrics().counter("loose") == 3


class TestCounterAggregation:
    def test_subtree_counters_sum(self):
        tracer = obs.Tracer()
        with tracer.span("root"):
            tracer.add("k", 1)
            with tracer.span("child"):
                tracer.add("k", 2)
                with tracer.span("grand"):
                    tracer.add("k", 4)
            with tracer.span("child2"):
                tracer.add("k", 8)
        root = tracer.roots[0]
        assert root.metrics.counter("k") == 1
        assert root.aggregate_metrics().counter("k") == 15
        child = root.find("child")
        assert child.aggregate_metrics().counter("k") == 6

    def test_counters_reject_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.add("k", -1)

    def test_gauges_child_overrides_parent(self):
        tracer = obs.Tracer()
        with tracer.span("root"):
            tracer.set_gauge("fmax", 100)
            with tracer.span("child"):
                tracer.set_gauge("fmax", 250)
        merged = tracer.roots[0].aggregate_metrics()
        assert merged.gauges["fmax"].value == 250

    def test_histogram_merge_and_summary(self):
        tracer = obs.Tracer()
        with tracer.span("root"):
            tracer.observe("fanout", 10)
            with tracer.span("child"):
                tracer.observe("fanout", 30)
                tracer.observe("fanout", 20)
        summary = tracer.roots[0].aggregate_metrics().to_dict()["histograms"]["fanout"]
        assert summary["count"] == 3
        assert summary["min"] == 10 and summary["max"] == 30
        assert summary["mean"] == pytest.approx(20.0)
        assert summary["p50"] == 20

    def test_histogram_percentiles(self):
        hist = Histogram()
        for v in range(1, 101):
            hist.observe(v)
        assert hist.percentile(50) == 50
        assert hist.percentile(90) == 90
        assert hist.percentile(100) == 100
        assert Histogram().summary() == {"count": 0}

    def test_to_dict_shape(self):
        registry = MetricsRegistry()
        registry.add("c", 2)
        registry.set_gauge("g", 1.5)
        registry.observe("h", 7)
        view = registry.to_dict()
        assert view["counters"] == {"c": 2}
        assert view["gauges"] == {"g": 1.5}
        assert view["histograms"]["h"]["count"] == 1
