"""Property-based tests of scheduler invariants over random DFGs.

Hypothesis generates random dataflow DAGs (mixing combinational ops,
registers, loads/stores and multi-cycle calls); the invariants below must
hold for *any* graph and clock target:

* data dependencies are respected in time (operand available before use);
* every chained arrival fits the budget unless recorded as a violation;
* report round-trips are lossless;
* the calibrated schedule never mis-orders what the HLS schedule ordered.
"""

from hypothesis import given, settings, strategies as st

from repro.delay.calibrated import CalibratedDelayModel
from repro.delay.hls_model import HlsDelayModel
from repro.ir.builder import DFGBuilder
from repro.ir.ops import Opcode
from repro.ir.program import Buffer
from repro.ir.types import i32
from repro.scheduling.chaining import (
    CLOCK_MARGIN_NS,
    ChainingScheduler,
    effective_latency,
)
from repro.scheduling.report import emit_report, parse_report

from conftest import make_synthetic_table

# Instruction stream encoding: each element appends one op whose operands
# are drawn (by index) from the values produced so far.
_OP_CHOICES = ("add", "sub", "mul", "min", "reg", "load", "store")


@st.composite
def random_dfg(draw):
    b = DFGBuilder("rand")
    buf = Buffer("m", i32, 256)
    values = [b.input("x", i32), b.input("y", i32), b.const(3, i32)]
    n_ops = draw(st.integers(min_value=1, max_value=24))
    for i in range(n_ops):
        kind = draw(st.sampled_from(_OP_CHOICES))
        a = values[draw(st.integers(0, len(values) - 1))]
        c = values[draw(st.integers(0, len(values) - 1))]
        if kind == "add":
            values.append(b.add(a, c, name=f"v{i}"))
        elif kind == "sub":
            values.append(b.sub(a, c, name=f"v{i}"))
        elif kind == "mul":
            values.append(b.mul(a, c, name=f"v{i}"))
        elif kind == "min":
            values.append(b.min_(a, c, name=f"v{i}"))
        elif kind == "reg":
            values.append(b.reg(a, name=f"v{i}"))
        elif kind == "load":
            values.append(b.load(buf, a, name=f"v{i}"))
        else:
            b.store(buf, a, c)
    return b.build()


def _check_dependencies(schedule):
    for entry in schedule.entries.values():
        for operand in entry.op.operands:
            producer = operand.producer
            if producer is None or producer.opcode is Opcode.CONST:
                continue
            p_entry = schedule.entries[producer.name]
            assert p_entry.finish_cycle <= entry.cycle, (
                f"{entry.op.name} consumes {operand.name} before it exists"
            )
            if (
                p_entry.finish_cycle == entry.cycle
                and entry.op.opcode is not Opcode.REG
                and producer.latency == 0
                and not producer.attrs.get("extra_latency")
            ):
                # Same-cycle chaining: the consumer starts no earlier than
                # the producer finishes within the cycle.
                assert entry.start_ns >= p_entry.end_ns - 1e-9


class TestSchedulerInvariants:
    @settings(max_examples=120, deadline=None)
    @given(dfg=random_dfg(), clock=st.sampled_from([2.0, 3.0, 5.0]))
    def test_dependencies_respected(self, dfg, clock):
        schedule = ChainingScheduler(HlsDelayModel(), clock).schedule(dfg)
        _check_dependencies(schedule)

    @settings(max_examples=120, deadline=None)
    @given(dfg=random_dfg(), clock=st.sampled_from([2.0, 3.0, 5.0]))
    def test_budget_or_violation(self, dfg, clock):
        schedule = ChainingScheduler(HlsDelayModel(), clock).schedule(dfg)
        budget = clock - CLOCK_MARGIN_NS
        flagged = {v.op.name for v in schedule.violations}
        for entry in schedule.entries.values():
            assert entry.end_ns <= budget + 1e-9 or entry.op.name in flagged

    @settings(max_examples=80, deadline=None)
    @given(dfg=random_dfg())
    def test_report_roundtrip(self, dfg):
        schedule = ChainingScheduler(HlsDelayModel(), 3.0).schedule(dfg)
        back = parse_report(emit_report(schedule), dfg)
        assert back.depth == schedule.depth
        for name, entry in schedule.entries.items():
            assert back.entries[name].cycle == entry.cycle

    @settings(max_examples=80, deadline=None)
    @given(dfg=random_dfg())
    def test_calibrated_depth_at_least_hls(self, dfg):
        """Calibrated delays can only push ops later, never earlier."""
        hls = ChainingScheduler(HlsDelayModel(), 3.0).schedule(dfg.clone())
        cal_model = CalibratedDelayModel(make_synthetic_table())
        cal = ChainingScheduler(cal_model, 3.0).schedule(dfg)
        assert cal.depth >= hls.depth

    @settings(max_examples=80, deadline=None)
    @given(dfg=random_dfg(), clock=st.sampled_from([2.0, 4.0]))
    def test_stage_widths_nonnegative_and_bounded(self, dfg, clock):
        schedule = ChainingScheduler(HlsDelayModel(), clock).schedule(dfg)
        total_bits = sum(
            v.type.bits for v in dfg.values.values() if not v.is_const
        )
        call_like = sum(
            1 for e in schedule.entries.values() if effective_latency(e.op) > 0
        )
        for cycle in range(schedule.depth):
            width = schedule.stage_width(cycle)
            assert width >= 0
            assert width <= total_bits + 32 * call_like
