"""Tests for skid-buffer FIFO implementation costs (repro.control.skid)."""

from repro.control.minarea import end_buffer_plan, min_area_cuts
from repro.control.skid import SRL_MAX_DEPTH, fifo_area, skid_buffer_specs


class TestFifoArea:
    def test_shallow_uses_srl(self):
        luts, ffs, brams = fifo_area(8, 64)
        assert brams == 0
        assert luts >= 64

    def test_deep_uses_bram(self):
        luts, ffs, brams = fifo_area(512, 64)
        assert brams >= 1

    def test_threshold_boundary(self):
        assert fifo_area(SRL_MAX_DEPTH, 32)[2] == 0
        assert fifo_area(SRL_MAX_DEPTH + 1, 32)[2] >= 1

    def test_wide_bus_slices_brams(self):
        # 16384-bit bus: ceil(16384/72) parallel BRAM36 regardless of depth.
        _l, _f, brams = fifo_area(512, 16384)
        assert brams == 228

    def test_empty_fifo_free(self):
        assert fifo_area(0, 64) == (0, 0, 0)
        assert fifo_area(64, 0) == (0, 0, 0)


class TestTable2AreaShape:
    """The Table-2 mechanism: width shaping makes the naive end buffer
    BRAM-hungry while the min-area split is nearly free."""

    # 512-wide float vector product, ~62 stages, 16384-bit output.
    WIDTHS = [16384] * 20 + [512] * 20 + [32] * 16 + [16384] * 6

    def test_naive_buffer_needs_hundreds_of_brams(self):
        specs = skid_buffer_specs(end_buffer_plan(self.WIDTHS))
        assert sum(s.brams for s in specs) >= 200

    def test_minarea_buffer_nearly_bram_free(self):
        specs = skid_buffer_specs(min_area_cuts(self.WIDTHS))
        assert sum(s.brams for s in specs) <= 4

    def test_specs_carry_stage_positions(self):
        plan = min_area_cuts(self.WIDTHS)
        specs = skid_buffer_specs(plan)
        assert tuple(s.after_stage for s in specs) == plan.cuts

    def test_bits_property(self):
        specs = skid_buffer_specs(end_buffer_plan(self.WIDTHS))
        assert specs[0].bits == specs[0].depth * specs[0].width
