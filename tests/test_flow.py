"""End-to-end flow tests (repro.flow) on small designs."""

import pytest

from repro.analysis import diagnose, format_critical_path
from repro.control.styles import ControlStyle
from repro.flow import Flow
from repro.opt import BASELINE, CTRL_ONLY, DATA_ONLY, FULL, OptimizationConfig
from repro.rtl.netlist import NetKind

from conftest import make_mini_stream_design, make_unrolled_compute_design


class TestFlowBasics:
    def test_runs_and_reports(self, flow, mini_design):
        result = flow.run(mini_design, BASELINE)
        assert result.fmax_mhz > 0
        assert result.period_ns == pytest.approx(1000.0 / result.fmax_mhz)
        assert result.design == "mini"
        assert 0 < result.utilization["BRAM"] < 100

    def test_deterministic(self, flow, mini_design):
        r1 = flow.run(mini_design, BASELINE)
        r2 = flow.run(make_mini_stream_design(), BASELINE)
        assert r1.fmax_mhz == pytest.approx(r2.fmax_mhz)

    def test_seed_changes_result_slightly(self, synthetic_table, mini_design):
        r1 = Flow(calibration=synthetic_table, seed=1).run(mini_design, BASELINE)
        r2 = Flow(calibration=synthetic_table, seed=2).run(
            make_mini_stream_design(), BASELINE
        )
        assert abs(r1.fmax_mhz - r2.fmax_mhz) / r1.fmax_mhz < 0.35

    def test_clock_override(self, synthetic_table, mini_design):
        result = Flow(clock_mhz=150, calibration=synthetic_table).run(
            mini_design, BASELINE
        )
        assert result.clock_target_mhz == 150

    def test_summary_text(self, flow, mini_design):
        text = flow.run(mini_design, BASELINE).summary()
        assert "MHz" in text and "LUT=" in text

    def test_input_design_not_mutated(self, flow, mini_design):
        flow.run(mini_design, FULL)
        # the original loop body carries no optimizer attributes
        for _, loop in mini_design.all_loops():
            for op in loop.body.ops:
                assert "extra_latency" not in op.attrs


class TestOptimizationEffect:
    def test_full_beats_baseline_on_broadcast_design(self, flow):
        design = make_mini_stream_design(depth=1 << 18)
        orig = flow.run(design, BASELINE)
        opt = flow.run(design, FULL)
        assert opt.fmax_mhz > orig.fmax_mhz

    def test_data_only_records_edits(self, flow):
        design = make_mini_stream_design(depth=1 << 18)
        result = flow.run(design, DATA_ONLY)
        assert any("buffer access" in e for e in result.schedule_edits)

    def test_baseline_records_no_edits(self, flow, mini_design):
        assert flow.run(mini_design, BASELINE).schedule_edits == []

    def test_unrolled_broadcast_design_gains(self, flow):
        design = make_unrolled_compute_design(unroll=64)
        orig = flow.run(design, BASELINE)
        opt = flow.run(design, DATA_ONLY)
        assert opt.fmax_mhz >= orig.fmax_mhz

    def test_ii_reported_and_preserved(self, flow):
        design = make_mini_stream_design(depth=1 << 18)
        orig = flow.run(design, BASELINE)
        opt = flow.run(design, FULL)
        assert orig.ii_by_loop["k/l"] == 1
        assert opt.ii_by_loop == orig.ii_by_loop  # §5.2: same II after opt

    def test_sync_report_present_when_pruning(self, flow, mini_design):
        result = flow.run(mini_design, CTRL_ONLY)
        assert result.sync_report is not None
        assert flow.run(mini_design, BASELINE).sync_report is None


class TestCalibrationWiring:
    """The flow must resolve calibration with its own seed and path."""

    def _capture_resolve(self, monkeypatch, synthetic_table):
        captured = {}

        def fake_resolve(device, seed=2020, smooth_passes=1, path=None):
            captured.update(
                device=device, seed=seed, smooth_passes=smooth_passes, path=path
            )
            return synthetic_table, "built"

        monkeypatch.setattr("repro.flow.resolve_calibration", fake_resolve)
        return captured

    def test_seed_forwarded_to_calibration(
        self, monkeypatch, synthetic_table, mini_design
    ):
        captured = self._capture_resolve(monkeypatch, synthetic_table)
        Flow(seed=7).run(mini_design, FULL)
        assert captured["seed"] == 7
        assert captured["device"] == mini_design.device
        assert captured["smooth_passes"] == Flow.SMOOTH_PASSES

    def test_calibration_path_forwarded(
        self, monkeypatch, synthetic_table, mini_design, tmp_path
    ):
        captured = self._capture_resolve(monkeypatch, synthetic_table)
        path = str(tmp_path / "cal.json")
        Flow(calibration_path=path).run(mini_design, FULL)
        assert captured["path"] == path

    def test_injected_table_skips_resolution(
        self, monkeypatch, synthetic_table, mini_design
    ):
        captured = self._capture_resolve(monkeypatch, synthetic_table)
        Flow(calibration=synthetic_table).run(mini_design, FULL)
        assert captured == {}

    def test_baseline_never_resolves(
        self, monkeypatch, synthetic_table, mini_design
    ):
        captured = self._capture_resolve(monkeypatch, synthetic_table)
        Flow().run(mini_design, BASELINE)
        assert captured == {}


class TestConfigLabels:
    def test_labels(self):
        assert BASELINE.label == "orig"
        assert DATA_ONLY.label == "data"
        assert FULL.label == "data+sync+skid_minarea"

    def test_with_control(self):
        cfg = BASELINE.with_control(ControlStyle.SKID)
        assert cfg.control is ControlStyle.SKID
        assert not cfg.broadcast_aware


class TestDiagnostics:
    def test_critical_path_formatting(self, flow, mini_design):
        result = flow.run(mini_design, BASELINE)
        text = format_critical_path(result.timing)
        assert "startpoint" in text and "endpoint" in text

    def test_diagnose_suggests_section(self, flow):
        design = make_mini_stream_design(depth=1 << 18)
        result = flow.run(design, BASELINE)
        advice = diagnose(result.timing)
        assert advice
        assert any("§4" in line for line in advice)

    def test_compare_helper(self, flow, mini_design):
        orig, opt = flow.compare(mini_design)
        assert orig.config_label == "orig"
        assert opt.config_label == FULL.label


class TestTimingAttribution:
    def test_stall_enable_is_timed(self, flow):
        design = make_mini_stream_design(depth=1 << 18)
        result = flow.run(design, BASELINE)
        assert "enable" in result.timing.class_periods

    def test_mem_class_present_for_big_buffer(self, flow):
        design = make_mini_stream_design(depth=1 << 18)
        result = flow.run(design, BASELINE)
        assert result.timing.class_periods.get("mem", 0) > 0
