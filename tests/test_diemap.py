"""Tests for the ASCII die maps (repro.physical.diemap)."""

from repro.physical.device import get_device
from repro.physical.diemap import density_map, net_map, worst_broadcast_map
from repro.physical.fabric import Fabric
from repro.physical.placement import Placement, Placer
from repro.rtl.netlist import CellKind, Netlist, NetKind


def placed_star(fanout=40):
    nl = Netlist("star")
    hub = nl.new_cell("hub", CellKind.FF, ffs=8, width=8, delay_ns=0.1)
    sinks = [
        (nl.new_cell(f"s{i}", CellKind.LOGIC, luts=16, delay_ns=0.3), "i")
        for i in range(fanout)
    ]
    net = nl.connect("bcast", hub, sinks, kind=NetKind.DATA)
    fabric = Fabric(get_device("aws-f1"))
    placement = Placer(fabric).place(nl)
    return nl, net, placement, fabric


class TestDensityMap:
    def test_dimensions(self):
        nl, _net, placement, fabric = placed_star()
        text = density_map(nl, placement, fabric, cols=40, rows=10)
        body = text.splitlines()[2:]
        assert len(body) == 10
        assert all(len(line) == 40 for line in body)

    def test_marks_special_columns(self):
        nl, _net, placement, fabric = placed_star()
        header = density_map(nl, placement, fabric).splitlines()[1]
        assert "B" in header and "D" in header

    def test_non_empty_where_design_is(self):
        nl, _net, placement, fabric = placed_star()
        body = "\n".join(density_map(nl, placement, fabric).splitlines()[2:])
        assert any(ch not in " " for ch in body)


class TestNetMap:
    def test_driver_and_sinks_marked(self):
        _nl, net, placement, fabric = placed_star()
        text = net_map(net, placement, fabric)
        assert "S" in text or "X" in text
        assert "x" in text or "X" in text

    def test_header_reports_fanout_and_spread(self):
        _nl, net, placement, fabric = placed_star(fanout=40)
        header = net_map(net, placement, fabric).splitlines()[0]
        assert "fanout 40" in header
        assert "spread" in header

    def test_worst_broadcast_helper(self):
        nl, net, placement, fabric = placed_star()
        text = worst_broadcast_map(nl, placement, fabric)
        assert net.name in text

    def test_no_nets_message(self):
        nl = Netlist("empty")
        nl.new_cell("only", CellKind.FF, ffs=1, delay_ns=0.1)
        fabric = Fabric(get_device("zc706"))
        placement = Placement()
        placement.put(nl.cells["only"], 0, 0)
        assert "no multi-sink nets" in worst_broadcast_map(nl, placement, fabric)
