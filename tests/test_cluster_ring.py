"""Consistent-hash ring properties: determinism, balance, minimal remap.

These pin the quantitative promises the cluster design leans on (see
DESIGN.md §11): ownership is identical across processes (pure SHA-256
arithmetic), virtual nodes keep per-node load within a small factor, and
a membership change remaps only ~1/n of the keyspace — which is what
keeps the fleet's warm result stores valid across node churn.
"""

from __future__ import annotations

import hashlib
from collections import Counter

import pytest

from repro.cluster.ring import DEFAULT_REPLICAS, DEFAULT_VNODES, HashRing


def _digests(count: int):
    """A deterministic uniform digest population (same recipe as
    ``FlowRequest.digest()``: hex SHA-256)."""
    return [
        hashlib.sha256(f"request-{index}".encode()).hexdigest()
        for index in range(count)
    ]


class TestDeterminism:
    def test_same_members_same_ownership(self):
        ring_a = HashRing(["n0", "n1", "n2"])
        ring_b = HashRing(["n2", "n0", "n1"])  # insertion order irrelevant
        for digest in _digests(200):
            assert ring_a.owners(digest) == ring_b.owners(digest)

    def test_owner_is_first_of_owners(self):
        ring = HashRing(["n0", "n1", "n2"])
        for digest in _digests(50):
            assert ring.owner(digest) == ring.owners(digest)[0]

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.owners("abc") == []
        with pytest.raises(LookupError):
            ring.owner("abc")

    def test_membership_bookkeeping(self):
        ring = HashRing(vnodes=8)
        assert ring.add("n0") and not ring.add("n0")
        assert "n0" in ring and len(ring) == 1
        assert ring.remove("n0") and not ring.remove("n0")
        assert ring.nodes() == frozenset()

    def test_vnodes_validated(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)


class TestReplicaSets:
    def test_owners_are_distinct(self):
        ring = HashRing(["n0", "n1", "n2", "n3"])
        for digest in _digests(100):
            owners = ring.owners(digest, count=3)
            assert len(owners) == len(set(owners)) == 3

    def test_replicas_capped_by_membership(self):
        ring = HashRing(["n0", "n1"])
        assert sorted(ring.owners("d", count=5)) == ["n0", "n1"]
        assert DEFAULT_REPLICAS == 2

    def test_primary_and_backup_differ(self):
        ring = HashRing(["n0", "n1", "n2"])
        for digest in _digests(100):
            primary, backup = ring.owners(digest, count=2)
            assert primary != backup


class TestBalance:
    def test_default_vnodes_balance_three_nodes(self):
        """The documented promise: with 256 vnodes the max/min primary
        load ratio over a uniform digest population stays under ~1.2 on
        a 3-node ring.  (64 vnodes measured at ~1.46 — the reason the
        default is 256.)"""
        assert DEFAULT_VNODES == 256
        ring = HashRing(["n0", "n1", "n2"])
        loads = Counter(ring.owner(digest) for digest in _digests(30000))
        assert set(loads) == {"n0", "n1", "n2"}
        ratio = max(loads.values()) / min(loads.values())
        assert ratio < 1.2, f"load ratio {ratio:.3f} too skewed"


class TestMinimalRemap:
    def test_join_remaps_about_one_over_n(self):
        """Adding a 4th node must steal ~1/4 of the keyspace and leave
        everything else owned where it was."""
        digests = _digests(8000)
        ring = HashRing(["n0", "n1", "n2"])
        before = {digest: ring.owner(digest) for digest in digests}
        ring.add("n3")
        moved = sum(1 for digest in digests if ring.owner(digest) != before[digest])
        fraction = moved / len(digests)
        assert 0.15 < fraction < 0.35, f"join moved {fraction:.2%}"
        # Every moved digest moved TO the joiner, never between old nodes.
        for digest in digests:
            now = ring.owner(digest)
            if now != before[digest]:
                assert now == "n3"

    def test_leave_remaps_only_the_dead_nodes_arc(self):
        digests = _digests(8000)
        ring = HashRing(["n0", "n1", "n2"])
        before = {digest: ring.owner(digest) for digest in digests}
        ring.remove("n2")
        for digest in digests:
            if before[digest] != "n2":
                assert ring.owner(digest) == before[digest]

    def test_rejoin_restores_ownership(self):
        """Failover symmetry: a node that dies and revives gets the exact
        same arcs back (positions are pure functions of node id)."""
        digests = _digests(2000)
        ring = HashRing(["n0", "n1", "n2"])
        before = {digest: ring.owners(digest) for digest in digests}
        ring.remove("n1")
        ring.add("n1")
        for digest in digests:
            assert ring.owners(digest) == before[digest]
