"""Checkpoint/resume: a killed worker's retry resumes from stage artifacts.

The worker-side flow writes each completed stage to the shared
``$REPRO_CACHE_DIR/stages`` store as it goes (see :mod:`repro.pipeline`).
These tests kill a worker *late* in the pipeline — after the prefix has
been checkpointed — and assert the retry (a brand-new process) skips the
checkpointed prefix, reproduces the reference result digest, and reports
the skips through its journal and the service counters.
"""

from __future__ import annotations

import asyncio
import os

from repro.service.daemon import FlowService
from repro.service.request import FlowRequest
from repro.service.store import ResultStore
from repro.service.worker import execute_request, worker_entry

#: Marker-file path (fork and spawn both inherit the environment; the
#: wrapper must be module-level to survive spawn).
DIE_ENV = "REPRO_TEST_DIE_AT_TIMING"


def _die_at_timing_entry(request_dict, store_root, conn):
    """Real worker, but the first attempt dies silently (SIGKILL-style,
    ``os._exit``) when it reaches the timing stage — after every earlier
    stage has checkpointed its artifact."""
    marker = os.environ[DIE_ENV]
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("dying at timing\n")

        from repro.physical.timing import TimingAnalyzer

        TimingAnalyzer.analyze = lambda self: os._exit(9)
    worker_entry(request_dict, store_root, conn)


def _service(tmp_path, **kwargs):
    kwargs.setdefault("store", ResultStore(str(tmp_path / "results")))
    kwargs.setdefault("quarantine_dir", str(tmp_path / "quarantine"))
    kwargs.setdefault("backoff_s", 0.01)
    kwargs.setdefault("backoff_cap_s", 0.05)
    return FlowService(**kwargs)


def test_killed_worker_resumes_from_checkpointed_stages(tmp_path, monkeypatch):
    # Private cache dir: the stage store must start cold so the skipped
    # prefix provably comes from the dead first attempt's checkpoints.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv(DIE_ENV, str(tmp_path / "die-marker"))
    request = FlowRequest.make("matmul", config="orig")

    # Reference digest from an uncached in-process run.
    monkeypatch.setenv("REPRO_STAGE_CACHE", "off")
    reference_digest = execute_request(request).result_digest()
    monkeypatch.delenv("REPRO_STAGE_CACHE")

    async def scenario():
        service = _service(
            tmp_path, workers=1, max_attempts=3, entry=_die_at_timing_entry
        )
        await service.start()
        try:
            job, how = service.submit(request)
            assert how == "queued"
            await service.wait(job, timeout=180)

            assert job.state == "done"
            assert job.attempts == 2
            assert job.result_digest == reference_digest
            assert service.counter("service.crashes") == 1
            assert service.counter("service.retries") == 1
            assert service.counter("service.compiles") == 1

            # The winning attempt's journal shows the resumed prefix: every
            # cacheable stage before timing was served from the first
            # attempt's checkpoints; timing (where the corpse fell) ran.
            journal = job.record()["journal"]
            assert journal is not None
            by_stage = {entry["stage"]: entry for entry in journal}
            assert by_stage["timing"]["action"] == "run"
            resumed = [
                entry["stage"]
                for entry in journal
                if entry["action"] == "skipped" and entry["source"] == "disk"
            ]
            assert len(resumed) >= 8, journal
            assert "pragmas" in resumed and "retiming" in resumed
            assert service.counter("service.stages_skipped") == len(resumed)
        finally:
            await service.stop()

    asyncio.run(scenario())
