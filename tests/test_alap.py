"""Tests for ALAP/mobility analysis (repro.scheduling.alap)."""

from repro.delay.hls_model import HlsDelayModel
from repro.ir.builder import DFGBuilder
from repro.ir.types import i32
from repro.scheduling.alap import alap_cycles, free_split_points, mobility, pinned_ops
from repro.scheduling.chaining import ChainingScheduler


def schedule_of(builder_fn, clock=2.0):
    b = DFGBuilder("m")
    builder_fn(b)
    return ChainingScheduler(HlsDelayModel(), clock).schedule(b.build())


class TestMobility:
    def test_critical_chain_pinned(self):
        """A single long chain has no slack anywhere."""

        def body(b):
            v = b.input("x", i32)
            for i in range(10):
                v = b.add(v, v, name=f"a{i}")

        sched = schedule_of(body)
        assert set(pinned_ops(sched)) >= {
            name for name in sched.entries if name.startswith("op_a")
        }

    def test_side_branch_has_slack(self):
        """A short branch beside a long chain can slide."""

        def body(b):
            x = b.input("x", i32)
            v = x
            for i in range(10):
                v = b.add(v, v, name=f"a{i}")
            short = b.sub(x, x, name="short")
            b.add(v, short, name="join")

        sched = schedule_of(body)
        slack = mobility(sched)
        assert slack["op_short"] >= 1
        assert slack["op_join"] == 0

    def test_alap_never_before_asap(self):
        def body(b):
            x = b.input("x", i32)
            y = b.mul(x, x, name="y")
            b.add(y, x, name="z")

        sched = schedule_of(body, clock=4.0)
        alap = alap_cycles(sched)
        for name, entry in sched.entries.items():
            assert alap[name] >= entry.cycle

    def test_wider_horizon_adds_slack(self):
        def body(b):
            x = b.input("x", i32)
            b.add(x, x, name="solo")

        sched = schedule_of(body)
        tight = mobility(sched)
        loose = mobility(sched, depth=sched.depth + 3)
        assert loose["op_solo"] == tight["op_solo"] + 3

    def test_free_split_points_found(self):
        def body(b):
            x = b.input("x", i32)
            v = x
            for i in range(10):
                v = b.add(v, v, name=f"a{i}")
            lazy = b.sub(x, x, name="lazy")
            b.add(v, lazy, name="join")

        sched = schedule_of(body)
        free = free_split_points(sched)
        # 'lazy' feeds only the join, which is pinned -> not free; but the
        # producer of lazy's operand (x is an input)... the op itself is
        # free to register IF its consumers have slack. join has none, so
        # 'op_lazy' must NOT be free; chain heads feeding slack-y consumers are.
        assert "op_lazy" not in free

    def test_register_insertion_at_slacky_point_keeps_depth(self):
        def body(b):
            x = b.input("x", i32)
            v = x
            for i in range(10):
                v = b.add(v, v, name=f"a{i}")
            lazy = b.sub(x, x, name="lazy")
            b.add(v, lazy, name="join")

        b = DFGBuilder("m")
        body(b)
        dfg = b.build()
        sched = ChainingScheduler(HlsDelayModel(), 2.0).schedule(dfg)
        depth_before = sched.depth
        lazy_val = dfg.values["lazy"]
        dfg.insert_reg_after(lazy_val)
        resched = ChainingScheduler(HlsDelayModel(), 2.0).schedule(dfg)
        assert resched.depth == depth_before  # slack absorbed the register
