"""Tests for the supplementary (non-Table-1) designs."""

import pytest

from repro.analysis import classify_design
from repro.designs import build_design, design_names
from repro.designs.registry import EXTRA_BUILDERS
from repro.ir.passes import apply_pragmas
from repro.opt import BASELINE, FULL


class TestRegistry:
    def test_extras_listed_only_on_request(self):
        assert "double_buffer" not in design_names()
        assert "double_buffer" in design_names(include_extra=True)
        assert set(EXTRA_BUILDERS) == {
            "double_buffer",
            "dynamic_struct",
            "vec_stream",
        }

    @pytest.mark.parametrize("name", sorted(EXTRA_BUILDERS))
    def test_builds_and_lowers(self, name):
        design = build_design(name)
        design.verify()
        apply_pragmas(design).verify()


class TestDoubleBuffer:
    def test_two_tile_buffers(self):
        design = build_design("double_buffer", pes=8, tile_depth=256)
        assert design.buffers["ping"].depth == design.buffers["pong"].depth

    def test_memory_broadcast_detected(self):
        report = classify_design(build_design("double_buffer", pes=8, tile_depth=1024))
        assert report.of_kind("memory")

    def test_full_pipeline_ii_one(self, flow):
        design = build_design("double_buffer", pes=8, tile_depth=256)
        result = flow.run(design, FULL)
        assert all(ii == 1 for ii in result.ii_by_loop.values())

    def test_optimization_gains(self, flow):
        design = build_design("double_buffer")
        orig = flow.run(design, BASELINE)
        opt = flow.run(design, FULL)
        assert opt.fmax_mhz > orig.fmax_mhz


class TestDynamicStruct:
    def test_heap_sized_in_brams(self):
        design = build_design("dynamic_struct", heap_words=1 << 19)
        assert design.buffers["heap"].bram36_units() >= 256

    def test_memory_broadcast_detected(self):
        report = classify_design(build_design("dynamic_struct"))
        mem = report.of_kind("memory")
        assert mem and mem[0].fanout >= 256

    def test_two_loads_fit_dual_port(self, flow):
        design = build_design("dynamic_struct", heap_words=1 << 15)
        result = flow.run(design, BASELINE)
        assert result.ii_by_loop["walker/walk"] == 1

    def test_optimization_gains(self, flow):
        design = build_design("dynamic_struct")
        orig = flow.run(design, BASELINE)
        opt = flow.run(design, FULL)
        assert opt.fmax_mhz > orig.fmax_mhz
