"""Tests for the design-space explorer (repro.dse)."""

import pytest

from repro.dse import (
    BACKEND_NAMES,
    DsePoint,
    EngineBackend,
    InlineBackend,
    PointSignals,
    explore,
    make_backend,
    point_signals,
)
from repro.errors import ReproError
from repro.flow import Flow
from repro.ir.transforms import EMPTY_PLAN
from repro.opt import CONFIG_LABELS, FULL

from conftest import make_synthetic_table

GENOME_PARAMS = {"unroll": 16}


def small_backend(seed=2020):
    return InlineBackend(flow=Flow(seed=seed, calibration=make_synthetic_table()))


@pytest.fixture(scope="module")
def report():
    return explore(
        "genome",
        params=GENOME_PARAMS,
        backend=small_backend(),
        budget=12,
        seed=2020,
        max_generations=3,
    )


class TestPoints:
    def test_digest_stable(self):
        a = DsePoint.make(FULL, plan=[["unroll", {"loop": "dp", "factor": 4}]])
        b = DsePoint.make(FULL, plan=[["unroll", {"loop": "dp", "factor": 4}]])
        assert a == b
        assert a.digest() == b.digest()

    def test_digest_separates_axes(self):
        base = DsePoint.make(FULL)
        assert base.digest() != DsePoint.make(CONFIG_LABELS["orig"]).digest()
        assert base.digest() != DsePoint.make(FULL, clock_mhz=400).digest()
        assert (
            base.digest()
            != DsePoint.make(
                FULL, plan=[["unroll", {"loop": "dp", "factor": 4}]]
            ).digest()
        )

    def test_config_label_roundtrip(self):
        for label, config in CONFIG_LABELS.items():
            assert DsePoint.make(config).config_label == label

    def test_spec_is_jsonable(self):
        import json

        point = DsePoint.make(
            FULL, plan=[["unroll", {"loop": "dp", "factor": 4}]], clock_mhz=400
        )
        spec = json.loads(json.dumps(point.spec()))
        rebuilt = DsePoint.make(
            type(FULL).from_json(spec["config"]),
            plan=spec["plan"],
            clock_mhz=spec["clock_mhz"],
        )
        assert rebuilt.digest() == point.digest()

    def test_signals_dominate(self):
        small = PointSignals("a", ops=10, max_fanout=4)
        big = PointSignals("b", ops=20, max_fanout=8)
        wide = PointSignals("c", ops=10, max_fanout=16)
        assert small.dominates(big)
        assert not big.dominates(small)
        assert not wide.dominates(small)
        assert small.dominates(wide)

    def test_point_signals_of_empty_plan(self):
        from repro.designs import build_design

        design = build_design("genome", **GENOME_PARAMS)
        sig = point_signals(design, EMPTY_PLAN)
        assert sig.ops > 0
        assert sig.max_fanout >= 1
        assert len(sig.lowered_digest) == 64


class TestBackends:
    def test_make_backend_names(self):
        for name in BACKEND_NAMES:
            assert make_backend(name).name == name

    def test_make_backend_passthrough(self):
        backend = small_backend()
        assert make_backend(backend) is backend

    def test_make_backend_unknown(self):
        with pytest.raises(ReproError):
            make_backend("fpga")

    def test_failure_is_data_not_abort(self):
        backend = small_backend()
        bad = DsePoint.make(
            FULL, plan=[["unroll", {"loop": "no_such_loop", "factor": 2}]]
        )
        good = DsePoint.make(FULL)
        outcomes = backend.evaluate("genome", GENOME_PARAMS, 2020, [bad, good])
        assert not outcomes[0].ok
        assert "no_such_loop" in outcomes[0].error
        assert outcomes[1].ok
        assert outcomes[1].fmax_mhz > 0


class TestExplore:
    def test_generation_zero_covers_named_configs(self, report):
        gen0 = [e for e in report.evaluations if e.generation == 0]
        assert {e.point.config_label for e in gen0} == set(CONFIG_LABELS)
        assert all(e.point.plan == () for e in gen0)

    def test_winner_at_least_hand_tuned_full(self, report):
        full = next(
            e
            for e in report.evaluations
            if e.generation == 0 and e.point.config_label == "full"
        )
        assert report.winner is not None
        assert report.winner.fmax_mhz >= full.fmax_mhz

    def test_budget_respected(self, report):
        assert report.compiled <= report.budget

    def test_coalescing_keeps_compiles_below_enumerated(self, report):
        assert report.enumerated > report.compiled
        assert report.deduplicated + report.coalesced + report.pruned > 0

    def test_counter_arithmetic(self, report):
        # Every enumerated point is exactly one of: duplicate, coalesced,
        # pruned, compiled, or failed-before-compile.
        admission_failures = sum(
            1
            for e in report.evaluations
            if e.status == "failed" and e.signals is None
        )
        assert (
            report.deduplicated
            + report.coalesced
            + report.pruned
            + report.compiled
            + admission_failures
            == report.enumerated
        )

    def test_deterministic_reports(self):
        kwargs = dict(
            params=GENOME_PARAMS, budget=10, seed=2020, max_generations=2
        )
        a = explore("genome", backend=small_backend(), **kwargs)
        b = explore("genome", backend=small_backend(), **kwargs)
        assert a.winner.digest == b.winner.digest
        assert a.to_dict() == b.to_dict()

    def test_seed_changes_search(self):
        a = explore(
            "genome",
            params=GENOME_PARAMS,
            backend=small_backend(),
            budget=10,
            seed=2020,
            max_generations=2,
        )
        b = explore(
            "genome",
            params=GENOME_PARAMS,
            backend=small_backend(seed=2021),
            budget=10,
            seed=2021,
            max_generations=2,
        )
        digests = lambda rep: [e.digest for e in rep.evaluations]  # noqa: E731
        assert digests(a) != digests(b)

    def test_report_roundtrips_to_json(self, report):
        import json

        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["winner"]["digest"] == report.winner.digest
        assert doc["counters"]["compiled"] == report.compiled

    def test_engine_backend_matches_inline(self, report):
        engine = explore(
            "genome",
            params=GENOME_PARAMS,
            backend=EngineBackend(
                jobs=1, flow=Flow(seed=2020, calibration=make_synthetic_table())
            ),
            budget=12,
            seed=2020,
            max_generations=3,
        )
        assert engine.winner.digest == report.winner.digest
        assert engine.winner.fmax_mhz == pytest.approx(report.winner.fmax_mhz)


class TestServiceBacked:
    def test_explore_through_thread_service(self, tmp_path):
        from repro.dse.backends import ServiceBackend
        from repro.service import ResultStore, ServiceClient, serve_in_thread

        with serve_in_thread(
            store=ResultStore(str(tmp_path / "results")),
            quarantine_dir=str(tmp_path / "quarantine"),
            workers=2,
            queue_limit=32,
        ) as server:
            client = ServiceClient(server.host, server.port)
            client.wait_ready()
            report = explore(
                "genome",
                params=GENOME_PARAMS,
                backend=ServiceBackend(client),
                budget=6,
                seed=2020,
                max_generations=0,
            )
        assert report.compiled == 6
        assert report.winner is not None
        assert report.winner.fmax_mhz > 0
