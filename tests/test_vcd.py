"""Tests for VCD tracing (repro.sim.vcd)."""

import io
import re

import pytest

from repro.sim.harness import BackpressureSink
from repro.sim.pipeline import SkidPipeline, StallPipeline, simulate
from repro.sim.vcd import VcdWriter, _ident, trace_pipeline

ITEMS = list(range(60))


class TestWriter:
    def test_header_structure(self):
        buf = io.StringIO()
        writer = VcdWriter(buf, module="dut")
        writer.add_signal("a")
        writer.add_signal("count", width=8)
        writer.sample(0, [1, 5])
        text = buf.getvalue()
        assert "$timescale 1ns $end" in text
        assert "$scope module dut $end" in text
        assert "$var wire 1" in text and "$var integer 8" in text
        assert "$enddefinitions $end" in text

    def test_only_changes_emitted(self):
        buf = io.StringIO()
        writer = VcdWriter(buf)
        writer.add_signal("a")
        writer.sample(0, [1])
        writer.sample(1, [1])
        writer.sample(2, [0])
        body = buf.getvalue().split("$enddefinitions $end\n", 1)[1]
        changes = re.findall(r"^[01]\S+$", body, re.M)
        assert len(changes) == 2  # 1 at t0, 0 at t2, nothing at t1

    def test_idents_unique(self):
        idents = {_ident(i) for i in range(500)}
        assert len(idents) == 500


class TestTracing:
    def test_outputs_match_untraced_run(self):
        ready = BackpressureSink.burst_stall(20, 7)
        plain_out, plain_cycles = simulate(SkidPipeline(6), list(ITEMS), ready)
        buf = io.StringIO()
        traced_out, traced_cycles = trace_pipeline(
            SkidPipeline(6), list(ITEMS), ready, buf
        )
        assert traced_out == plain_out
        assert traced_cycles == plain_cycles

    def test_skid_occupancy_visible(self):
        buf = io.StringIO()
        trace_pipeline(SkidPipeline(6), list(ITEMS), BackpressureSink.burst_stall(20, 7), buf)
        text = buf.getvalue()
        assert "skid_occupancy" in text
        # occupancy reaches multi-element values during the stalls
        occupancies = [
            int(m.group(1), 2) for m in re.finditer(r"^b(\d+) ", text, re.M)
        ]
        assert max(occupancies) >= 2

    def test_stall_pipeline_traced(self):
        buf = io.StringIO()
        out, _cycles = trace_pipeline(
            StallPipeline(4), list(ITEMS), BackpressureSink.duty(1, 2), buf
        )
        assert out == ITEMS
        assert "out_occupancy" in buf.getvalue()

    def test_per_stage_signals(self):
        buf = io.StringIO()
        trace_pipeline(SkidPipeline(5), list(ITEMS), BackpressureSink.always(), buf)
        text = buf.getvalue()
        for i in range(5):
            assert f"stage{i}_valid" in text

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(TypeError):
            trace_pipeline(object(), [], BackpressureSink.always(), io.StringIO())
