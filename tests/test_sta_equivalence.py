"""Differential tests for the incremental timing engine.

The production :class:`TimingAnalyzer` (indexed, memoized, incremental)
must reproduce the seed scan-based analyzer — preserved verbatim as
:class:`repro.physical.reference.ReferenceTimingAnalyzer` — *bit for bit*:
same period/Fmax floats, same critical-path endpoints and hops, same
per-class attribution, on every registered design under both the baseline
and fully-optimized configs.  A second family of tests checks that
incremental ``update()`` after structural edits (retiming moves, undos,
placement moves) lands in exactly the state a from-scratch analysis of the
edited netlist produces.
"""

from __future__ import annotations

import random

import pytest

from repro.designs.registry import DESIGN_BUILDERS, build_design
from repro.errors import PhysicalError
from repro.flow import Flow
from repro.opt import BASELINE, FULL
from repro.physical.reference import ReferenceTimingAnalyzer
from repro.physical.retiming import _apply_backward_move, _undo_backward_move
from repro.physical.timing import TimingAnalyzer
from repro.rtl.netlist import CellKind


def _as_tuple(result):
    return (
        result.period_ns,
        result.fmax_mhz,
        result.raw_period_ns,
        result.startpoint,
        result.endpoint,
        result.path_class,
        result.class_periods,
        [(h.cell, h.net, h.incr_ns, h.arrival_ns) for h in result.critical_path],
    )


def _assert_identical(got, expected):
    assert _as_tuple(got) == _as_tuple(expected)


@pytest.mark.parametrize("config", [BASELINE, FULL], ids=lambda c: c.label)
@pytest.mark.parametrize("name", sorted(DESIGN_BUILDERS))
def test_matches_reference_on_registered_designs(name, config, synthetic_table):
    """Full-flow netlists: production STA == seed STA, exactly."""
    flow = Flow(calibration=synthetic_table)
    res = flow.run(build_design(name), config)
    reference = ReferenceTimingAnalyzer(res.gen.netlist, res.placement).analyze()
    # The flow's own reported timing came from the production engine.
    _assert_identical(res.timing, reference)
    # And a fresh production run on the final netlist agrees too.
    fresh = TimingAnalyzer(res.gen.netlist, res.placement).analyze()
    _assert_identical(fresh, reference)


def _retimed_flow_state(synthetic_table, name="stream_buffer", config=FULL):
    """Netlist+placement after the flow, with retiming left to the test."""
    flow = Flow(calibration=synthetic_table, retime=False)
    res = flow.run(build_design(name), config)
    return res.gen.netlist, res.placement


def _retiming_update_args(record):
    return dict(
        changed_cells=[record.c.name] + [f.name for f in record.new_ffs],
        changed_nets=[net.name for net, _old in record.rewired]
        + [n.name for n in record.new_nets]
        + [record.n_out.name],
        removed_cells=[record.ff.name],
        removed_nets=[record.n_in.name],
    )


def _undo_update_args(record):
    return dict(
        changed_cells=[record.c.name, record.ff.name],
        changed_nets=[net.name for net, _old in record.rewired]
        + [record.n_in.name, record.n_out.name],
        removed_cells=[f.name for f in record.new_ffs],
        removed_nets=[n.name for n in record.new_nets],
    )


class TestIncrementalConsistency:
    def test_randomized_retiming_edits(self, synthetic_table):
        """After each random backward move, incremental state == full STA."""
        nl, pl = _retimed_flow_state(synthetic_table)
        analyzer = TimingAnalyzer(nl, pl)
        analyzer.propagate()
        rng = random.Random(2020)
        movable = sorted(
            c.name
            for c in nl.cells.values()
            if c.movable and c.kind is CellKind.FF
        )
        rng.shuffle(movable)
        applied = 0
        for name in movable:
            cell = nl.cells.get(name)
            if cell is None:
                continue
            record = _apply_backward_move(nl, pl, cell)
            if record is None:
                continue
            cone = analyzer.update(**_retiming_update_args(record))
            assert cone >= 0
            nl.validate()
            expected = TimingAnalyzer(nl, pl).analyze()
            _assert_identical(analyzer.result(), expected)
            _assert_identical(
                expected, ReferenceTimingAnalyzer(nl, pl).analyze()
            )
            applied += 1
            if applied >= 6:
                break
        assert applied >= 1, "flow produced no retimable registers"

    def test_undo_restores_timing_state(self, synthetic_table):
        nl, pl = _retimed_flow_state(synthetic_table)
        analyzer = TimingAnalyzer(nl, pl)
        before = analyzer.analyze()
        movable = sorted(
            c.name
            for c in nl.cells.values()
            if c.movable and c.kind is CellKind.FF
        )
        undone = 0
        for name in movable:
            cell = nl.cells.get(name)
            if cell is None:
                continue
            record = _apply_backward_move(nl, pl, cell)
            if record is None:
                continue
            analyzer.update(**_retiming_update_args(record))
            _undo_backward_move(nl, pl, record)
            analyzer.update(**_undo_update_args(record))
            nl.validate()
            _assert_identical(analyzer.result(), before)
            undone += 1
            if undone >= 3:
                break
        assert undone >= 1, "flow produced no retimable registers"

    def test_randomized_placement_moves(self, synthetic_table):
        """update() after placement.put() matches a from-scratch analysis."""
        nl, pl = _retimed_flow_state(synthetic_table)
        analyzer = TimingAnalyzer(nl, pl)
        analyzer.propagate()
        rng = random.Random(7)
        names = sorted(pl.pos)
        for name in rng.sample(names, min(10, len(names))):
            cell = nl.cells.get(name)
            if cell is None:
                continue
            x, y = pl.pos[name]
            pl.put(cell, x + rng.uniform(-20, 20), y + rng.uniform(-20, 20),
                   pl.radius.get(name, 0.0))
            analyzer.update(changed_cells=[name])
            expected = TimingAnalyzer(nl, pl).analyze()
            _assert_identical(analyzer.result(), expected)


class TestGuardOverflow:
    def test_corrupt_parent_chain_raises_in_classify(self, synthetic_table):
        nl, pl = _retimed_flow_state(synthetic_table)
        analyzer = TimingAnalyzer(nl, pl)
        analyzer.propagate()
        total, sink, net = analyzer.worst_endpoint()
        # Corrupt the parent map into a cycle: classification/trace must
        # fail loudly instead of silently truncating the walk.
        analyzer._parent[net.driver.name] = (net.driver, net, 0.0)
        with pytest.raises(PhysicalError):
            analyzer.result()
