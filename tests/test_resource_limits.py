"""Tests for resource-constrained scheduling (repro.scheduling.resources)."""

import pytest

from repro.delay.hls_model import HlsDelayModel
from repro.ir.builder import DFGBuilder
from repro.ir.program import Buffer
from repro.ir.types import f32, i32
from repro.scheduling.chaining import ChainingScheduler
from repro.scheduling.resources import (
    ResourceLimits,
    ResourceTracker,
    resource_class_of,
)


def schedule(dfg, limits=None, clock=4.0):
    return ChainingScheduler(HlsDelayModel(), clock, resource_limits=limits).schedule(dfg)


def parallel_muls(count=8, dtype=i32):
    b = DFGBuilder("muls")
    x = b.input("x", dtype)
    ys = [b.input(f"y{i}", dtype) for i in range(count)]
    for y in ys:
        b.mul(x, y)
    return b.build()


class TestResourceClasses:
    def test_int_mul_class(self):
        dfg = parallel_muls(1)
        op = next(o for o in dfg.ops if o.opcode.value == "mul")
        assert resource_class_of(op) == "mul"

    def test_float_mul_class(self):
        dfg = parallel_muls(1, dtype=f32)
        op = next(o for o in dfg.ops if o.opcode.value == "mul")
        assert resource_class_of(op) == "fmul"

    def test_mem_class_per_buffer(self):
        buf = Buffer("m", i32, 16)
        b = DFGBuilder()
        b.store(buf, b.input("a", i32), b.input("d", i32))
        op = b.dfg.ops[-1]
        assert resource_class_of(op) == "mem:m"

    def test_add_unlimited(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        op = b.add(x, x).producer
        assert resource_class_of(op) is None


class TestTracker:
    def test_defers_when_full(self):
        limits = ResourceLimits(limits={"mul": 2})
        tracker = ResourceTracker(limits)
        dfg = parallel_muls(3)
        muls = [o for o in dfg.ops if o.opcode.value == "mul"]
        assert tracker.first_free_cycle(muls[0], 0) == 0
        tracker.commit(muls[0], 0)
        tracker.commit(muls[1], 0)
        assert tracker.first_free_cycle(muls[2], 0) == 1

    def test_unlimited_class_never_defers(self):
        tracker = ResourceTracker(ResourceLimits())
        dfg = parallel_muls(1)
        op = dfg.ops[-1]
        for _ in range(100):
            tracker.commit(op, 0)
        assert tracker.first_free_cycle(op, 0) == 0


class TestScheduling:
    def test_unlimited_muls_share_cycle(self):
        sched = schedule(parallel_muls(8))
        cycles = {e.cycle for e in sched.entries.values() if e.op.opcode.value == "mul"}
        assert cycles == {0}

    def test_limited_muls_serialize(self):
        sched = schedule(parallel_muls(8), limits=ResourceLimits(limits={"mul": 2}))
        by_cycle = {}
        for e in sched.entries.values():
            if e.op.opcode.value == "mul":
                by_cycle[e.cycle] = by_cycle.get(e.cycle, 0) + 1
        assert max(by_cycle.values()) <= 2
        assert len(by_cycle) == 4

    def test_mem_port_limit(self):
        buf = Buffer("m", i32, 64)
        b = DFGBuilder()
        addr = b.input("a", i32)
        for i in range(4):
            b.load(buf, addr, name=f"v{i}")
        sched = schedule(b.build(), limits=ResourceLimits(default_mem_ports=2))
        by_cycle = {}
        for e in sched.entries.values():
            if e.op.opcode.value == "load":
                by_cycle[e.cycle] = by_cycle.get(e.cycle, 0) + 1
        assert max(by_cycle.values()) <= 2

    def test_dependencies_still_respected(self):
        b = DFGBuilder()
        x = b.input("x", f32)
        m1 = b.mul(x, x, name="m1")
        m2 = b.mul(m1, x, name="m2")
        sched = schedule(b.build(), limits=ResourceLimits(limits={"fmul": 1}))
        e1 = sched.entries["op_m1"]
        e2 = sched.entries["op_m2"]
        assert e2.cycle >= e1.finish_cycle

    def test_serialization_masks_broadcast_factor(self):
        """The interaction the module docstring warns about: limiting
        resources spreads a broadcast's consumers across cycles."""
        sched_unlimited = schedule(parallel_muls(8))
        sched_limited = schedule(
            parallel_muls(8), limits=ResourceLimits(limits={"mul": 1})
        )
        assert sched_limited.depth > sched_unlimited.depth
