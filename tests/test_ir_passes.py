"""Tests for loop unrolling, DCE and CSE (repro.ir.passes)."""

import pytest

from repro.errors import IRError
from repro.ir.builder import DFGBuilder
from repro.ir.dfg import DFG
from repro.ir.ops import Opcode
from repro.ir.passes import apply_pragmas, cse, dce, unroll_loop
from repro.ir.program import Buffer, Design, Fifo, Kernel, Loop
from repro.ir.types import i32


def make_body(buffer=None, fifo=None, shared_read=False):
    b = DFGBuilder("body")
    inv = b.input("inv", i32, loop_invariant=True)
    var = b.input("var", i32)
    src = inv
    if fifo is not None:
        src = b.fifo_read(fifo, name="elem", unroll_shared=shared_read)
    s = b.sub(var, src if shared_read else inv, name="s")
    if buffer is not None:
        st = b.store(buffer, b.input("idx", i32), s)
        st.attrs["bank_group"] = "per_copy"
    return b.build()


class TestUnroll:
    def test_invariant_becomes_broadcast(self):
        loop = Loop("l", make_body(), trip_count=16, unroll=4)
        unrolled = unroll_loop(loop)
        inv = unrolled.body.values["inv"]
        assert inv.fanout == 4

    def test_per_iteration_inputs_duplicated(self):
        loop = Loop("l", make_body(), trip_count=16, unroll=4)
        unrolled = unroll_loop(loop)
        names = {v.name for v in unrolled.body.inputs}
        assert {"var#0", "var#1", "var#2", "var#3"} <= names

    def test_trip_count_divided(self):
        loop = Loop("l", make_body(), trip_count=16, unroll=4)
        assert unroll_loop(loop).trip_count == 4

    def test_unroll_factor_reset(self):
        loop = Loop("l", make_body(), trip_count=16, unroll=4)
        assert unroll_loop(loop).unroll == 1

    def test_factor_one_identity(self):
        loop = Loop("l", make_body(), trip_count=16, unroll=1)
        assert unroll_loop(loop) is loop

    def test_indivisible_trip_count_rejected(self):
        loop = Loop("l", make_body(), trip_count=10, unroll=4)
        with pytest.raises(IRError):
            unroll_loop(loop)

    def test_nonpositive_factor_rejected(self):
        loop = Loop("l", make_body(), trip_count=8, unroll=1)
        with pytest.raises(IRError):
            unroll_loop(loop, factor=0)

    def test_bank_group_stamped_per_copy(self):
        buf = Buffer("m", i32, 64, partition=4)
        loop = Loop("l", make_body(buffer=buf), trip_count=8, unroll=4)
        unrolled = unroll_loop(loop)
        groups = [
            op.attrs["bank_group"]
            for op in unrolled.body.ops
            if op.opcode is Opcode.STORE
        ]
        assert sorted(groups) == [(k, 4) for k in range(4)]

    def test_shared_fifo_read_emitted_once(self):
        fifo = Fifo("f", i32)
        loop = Loop(
            "l", make_body(fifo=fifo, shared_read=True), trip_count=8, unroll=4
        )
        unrolled = unroll_loop(loop)
        reads = [op for op in unrolled.body.ops if op.opcode is Opcode.FIFO_READ]
        assert len(reads) == 1
        assert reads[0].result.fanout == 4

    def test_unshared_fifo_read_replicated(self):
        fifo = Fifo("f", i32)
        loop = Loop(
            "l", make_body(fifo=fifo, shared_read=False), trip_count=8, unroll=4
        )
        # the non-shared read result is dead in this body; wire it in:
        unrolled = unroll_loop(loop)
        reads = [op for op in unrolled.body.ops if op.opcode is Opcode.FIFO_READ]
        assert len(reads) == 4

    def test_shared_op_with_per_iter_operand_rejected(self):
        b = DFGBuilder("body")
        var = b.input("var", i32)
        op = b.dfg.add_op(Opcode.ADD, [var, var], name="a")
        op.attrs["unroll_shared"] = True
        loop = Loop("l", b.build(), trip_count=4, unroll=2)
        with pytest.raises(IRError):
            unroll_loop(loop)

    def test_apply_pragmas_clones(self):
        design = Design("d")
        fifo = design.add_fifo(Fifo("f", i32, external=True))
        k = design.add_kernel(Kernel("k"))
        k.add_loop(Loop("l", make_body(fifo=fifo), trip_count=8, unroll=4))
        lowered = apply_pragmas(design)
        assert design.kernels[0].loops[0].unroll == 4  # untouched
        assert lowered.kernels[0].loops[0].unroll == 1


class TestDce:
    def test_removes_dead_chain(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        dead = b.add(x, x)
        b.add(dead, dead)  # also dead
        assert dce(b.dfg) == 2
        assert len(b.dfg) == 0

    def test_keeps_side_effects(self):
        fifo = Fifo("f", i32)
        b = DFGBuilder()
        x = b.input("x", i32)
        b.fifo_write(fifo, b.add(x, x))
        assert dce(b.dfg) == 0

    def test_keeps_live_values(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        live = b.add(x, x)
        b.fifo_write(Fifo("f", i32), live)
        assert dce(b.dfg) == 0


class TestCse:
    def test_merges_identical_ops(self):
        b = DFGBuilder()
        x, y = b.input("x", i32), b.input("y", i32)
        a1 = b.add(x, y)
        a2 = b.add(x, y)
        use = b.sub(a1, a2)
        assert cse(b.dfg) == 1
        b.dfg.verify()
        # the survivor's fanout concentrated (the paper's timing concern)
        assert use.producer.operands[0] is use.producer.operands[1]

    def test_merges_equal_constants(self):
        b = DFGBuilder()
        c1 = b.const(7, i32)
        c2 = b.const(7, i32)
        b.add(c1, c2)
        assert cse(b.dfg) == 1

    def test_different_operand_order_not_merged(self):
        b = DFGBuilder()
        x, y = b.input("x", i32), b.input("y", i32)
        b.sub(x, y)
        b.sub(y, x)
        assert cse(b.dfg) == 0

    def test_side_effects_never_merged(self):
        fifo = Fifo("f", i32)
        b = DFGBuilder()
        x = b.input("x", i32)
        b.fifo_write(fifo, x)
        b.fifo_write(fifo, x)
        assert cse(b.dfg) == 0
