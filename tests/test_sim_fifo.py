"""Tests for the cycle-accurate FIFO model (repro.sim.fifo)."""

import pytest

from repro.errors import FifoOverflowError, FifoUnderflowError
from repro.sim.fifo import Fifo


class TestBasics:
    def test_push_pop_order(self):
        f = Fifo(4)
        for i in range(3):
            f.push(i)
            f.tick()
        out = []
        while not f.empty:
            out.append(f.pop())
            f.tick()
        assert out == [0, 1, 2]

    def test_push_visible_after_tick(self):
        f = Fifo(4)
        f.push(1)
        assert f.empty  # registered flag: still shows pre-edge state
        f.tick()
        assert not f.empty

    def test_full_flag_lags_one_cycle(self):
        f = Fifo(1)
        f.push("x")
        assert not f.full
        f.tick()
        assert f.full

    def test_almost_full_threshold(self):
        f = Fifo(3)
        f.push(1)
        f.tick()
        assert not f.almost_full
        f.push(2)
        f.tick()
        assert f.almost_full  # occupancy 2 >= depth-1

    def test_simultaneous_push_pop(self):
        f = Fifo(2)
        f.push(1)
        f.tick()
        head = f.pop()
        f.push(2)
        f.tick()
        assert head == 1
        assert f.occupancy == 1

    def test_max_occupancy_tracked(self):
        f = Fifo(4)
        for i in range(3):
            f.push(i)
            f.tick()
        f.pop()
        f.tick()
        assert f.max_occupancy == 3


class TestErrors:
    def test_overflow(self):
        f = Fifo(1)
        f.push(1)
        f.tick()
        with pytest.raises(FifoOverflowError):
            f.push(2)

    def test_underflow(self):
        f = Fifo(2)
        with pytest.raises(FifoUnderflowError):
            f.pop()

    def test_double_push_same_cycle(self):
        f = Fifo(4)
        f.push(1)
        with pytest.raises(FifoOverflowError):
            f.push(2)

    def test_double_pop_same_cycle(self):
        f = Fifo(4)
        f.push(1)
        f.tick()
        f.pop()
        with pytest.raises(FifoUnderflowError):
            f.pop()

    def test_zero_depth_rejected(self):
        with pytest.raises(FifoOverflowError):
            Fifo(0)


class TestDrain:
    def test_drain_returns_and_clears(self):
        f = Fifo(4)
        for i in range(3):
            f.push(i)
            f.tick()
        assert f.drain() == [0, 1, 2]
        assert f.empty and f.occupancy == 0
