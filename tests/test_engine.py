"""Tests for the parallel experiment engine (repro.engine)."""

import pytest

from repro import obs
from repro.engine import (
    Engine,
    FlowFailure,
    FlowJob,
    default_jobs,
    graft_trace,
    run_flow_job,
)
from repro.errors import ReproError
from repro.flow import Flow
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.opt import BASELINE, FULL


def _double(x):
    return 2 * x


def _traced_triple(x):
    with obs.span("triple", x=x):
        return 3 * x


class TestFlowJob:
    def test_make_sorts_params(self):
        job = FlowJob.make("stencil", BASELINE, iterations=4, width=8)
        assert job.params == (("iterations", 4), ("width", 8))
        assert job.param_dict == {"iterations": 4, "width": 8}

    def test_hashable_and_describable(self):
        job = FlowJob.make("matmul", FULL, tag="opt")
        assert hash(job)
        assert "matmul" in job.describe()
        assert FULL.label in job.describe()

    def test_run_flow_job_matches_direct_run(self, synthetic_table):
        from repro.designs import build_design

        flow = Flow(calibration=synthetic_table)
        job = FlowJob.make("matmul", BASELINE)
        via_job = run_flow_job(flow, job)
        direct = flow.run(build_design("matmul"), BASELINE)
        assert via_job.fmax_mhz == direct.fmax_mhz


class TestEngineSequential:
    def test_default_is_inline(self):
        assert Engine().jobs == 1

    def test_zero_means_cpu_count(self):
        assert Engine(jobs=0).jobs == default_jobs()

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            Engine(jobs=-1)

    def test_results_in_submission_order(self, synthetic_table):
        engine = Engine(flow=Flow(calibration=synthetic_table))
        jobs = [
            FlowJob.make("matmul", BASELINE),
            FlowJob.make("face_detection", BASELINE),
        ]
        results = engine.run_flows(jobs)
        assert [r.design for r in results] == ["matrix_multiply", "face_detection"]

    def test_map_inline(self):
        assert Engine().map(_double, [1, 2, 3]) == [2, 4, 6]


class TestEngineParallel:
    """Real multi-process runs, kept small (two cheap BASELINE flows)."""

    JOBS = [
        FlowJob.make("matmul", BASELINE),
        FlowJob.make("face_detection", BASELINE),
    ]

    def test_parallel_matches_sequential(self):
        sequential = Engine(jobs=1).run_flows(self.JOBS)
        parallel = Engine(jobs=2).run_flows(self.JOBS)
        assert [r.design for r in parallel] == [r.design for r in sequential]
        for seq, par in zip(sequential, parallel):
            assert par.fmax_mhz == seq.fmax_mhz
            assert par.utilization == seq.utilization

    def test_parallel_traces_merge_in_order(self):
        tracer = Tracer()
        with obs.activate(tracer):
            Engine(jobs=2).run_flows(self.JOBS)
        designs = [
            root.attrs["design"]
            for root in tracer.roots
            if root.name == obs.FLOW_SPAN
        ]
        assert designs == ["matrix_multiply", "face_detection"]
        workers = {root.attrs.get("worker") for root in tracer.roots}
        assert all(isinstance(w, int) for w in workers)

    def test_parallel_results_feed_run_report(self):
        tracer = Tracer()
        with obs.activate(tracer):
            results = Engine(jobs=2).run_flows(self.JOBS)
        report = obs.run_report(tracer, results)
        assert [run["design"] for run in report["runs"]] == [
            "matrix_multiply",
            "face_detection",
        ]
        # results matched to spans by identity => enriched records
        assert all("utilization" in run for run in report["runs"])

    def test_parallel_map_keeps_order_and_traces(self):
        tracer = Tracer()
        with obs.activate(tracer):
            out = Engine(jobs=2).map(_traced_triple, [5, 7, 9])
        assert out == [15, 21, 27]
        xs = [root.attrs["x"] for root in tracer.roots if root.name == "triple"]
        assert xs == [5, 7, 9]

    def test_parallel_without_tracer_is_fine(self):
        out = Engine(jobs=2).map(_double, [1, 2])
        assert out == [2, 4]


class TestCollectErrors:
    """run_flows(collect_errors=True): failures become FlowFailure slots."""

    GOOD = FlowJob.make("matmul", BASELINE)
    BAD = FlowJob.make("matmul", BASELINE, tag="bad", no_such_param=1)

    def test_sequential_collects_failures_in_order(self, synthetic_table):
        engine = Engine(flow=Flow(calibration=synthetic_table))
        results = engine.run_flows([self.BAD, self.GOOD], collect_errors=True)
        failure, success = results
        assert isinstance(failure, FlowFailure)
        assert not isinstance(success, FlowFailure)
        assert failure.job is self.BAD
        assert "no_such_param" in failure.error
        assert failure.record()["tag"] == "bad"

    def test_sequential_default_still_raises(self, synthetic_table):
        engine = Engine(flow=Flow(calibration=synthetic_table))
        with pytest.raises(Exception, match="no_such_param"):
            engine.run_flows([self.BAD, self.GOOD])

    def test_parallel_collects_failures_in_order(self):
        results = Engine(jobs=2).run_flows(
            [self.GOOD, self.BAD], collect_errors=True
        )
        success, failure = results
        assert not isinstance(success, FlowFailure)
        assert isinstance(failure, FlowFailure)
        assert "no_such_param" in failure.error

    def test_parallel_default_raises_earliest_failure(self):
        with pytest.raises(ReproError, match="no_such_param"):
            Engine(jobs=2).run_flows([self.GOOD, self.BAD])

    def test_failure_record_is_json_safe(self, synthetic_table):
        import json

        engine = Engine(flow=Flow(calibration=synthetic_table))
        (failure,) = engine.run_flows([self.BAD], collect_errors=True)
        record = json.loads(json.dumps(failure.record()))
        assert record["design"] == "matmul"
        assert record["error_type"]


class TestGraftTrace:
    def test_rebases_child_times(self):
        parent, child = Tracer(), Tracer()
        child._epoch = parent._epoch + 1.0  # child born one second later
        with child.span("work"):
            pass
        original_start = child.roots[0].start_s
        graft_trace(parent, child, worker=42)
        (root,) = parent.roots
        assert root.start_s == pytest.approx(original_start + 1.0)
        assert root.attrs["worker"] == 42

    def test_never_travels_back_in_time(self):
        parent, child = Tracer(), Tracer()
        child._epoch = parent._epoch - 5.0  # incomparable clocks
        with child.span("work"):
            pass
        graft_trace(parent, child)
        assert parent.roots[0].start_s >= 0.0

    def test_null_parent_is_noop(self):
        child = Tracer()
        with child.span("work"):
            pass
        graft_trace(NULL_TRACER, child)
        assert NULL_TRACER.roots == []
        assert child.roots  # untouched

    def test_out_of_span_metrics_merge(self):
        parent, child = Tracer(), Tracer()
        child.add("jobs.finished", 3)
        graft_trace(parent, child)
        assert parent.metrics.counter("jobs.finished") == 3
