"""Tests for the min-area skid-buffer dynamic program (§4.3)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.control.minarea import CutPlan, end_buffer_plan, min_area_cuts
from repro.errors import ControlError


def brute_force_best(widths):
    """Exhaustive search over all cut sets for small pipelines."""
    n = len(widths)
    best = None
    for k in range(n):
        for mids in itertools.combinations(range(1, n), k):
            cuts = list(mids) + [n]
            total = 0
            prev = 0
            for cut in cuts:
                total += (cut - prev + 1) * widths[cut - 1]
                prev = cut
            if best is None or total < best:
                best = total
    return best


class TestPaperExample:
    """The Fig. 17 numeric example must reproduce exactly."""

    WIDTHS = [1024] * 55 + [32] + [1024] * 5  # waist at stage 56 of 61

    def test_end_only_cost(self):
        assert end_buffer_plan(self.WIDTHS).total_bits == 63_488

    def test_min_area_cost(self):
        assert min_area_cuts(self.WIDTHS).total_bits == 7_968

    def test_min_area_cuts_at_waist(self):
        plan = min_area_cuts(self.WIDTHS)
        assert plan.cuts == (56, 61)

    def test_segments(self):
        plan = min_area_cuts(self.WIDTHS)
        assert plan.segments == ((57, 32), (6, 1024))


class TestDpProperties:
    def test_single_stage(self):
        plan = min_area_cuts([128])
        assert plan.cuts == (1,)
        assert plan.total_bits == 2 * 128

    def test_uniform_widths_prefer_one_buffer(self):
        plan = min_area_cuts([64] * 10)
        assert plan.cuts == (10,)

    def test_never_worse_than_end_only(self):
        widths = [100, 5, 200, 7, 300]
        assert min_area_cuts(widths).total_bits <= end_buffer_plan(widths).total_bits

    def test_matches_brute_force_small(self):
        for widths in ([3, 1, 4, 1, 5], [10, 10, 1, 10], [7], [1, 100], [100, 1]):
            assert min_area_cuts(widths).total_bits == brute_force_best(widths)

    def test_empty_rejected(self):
        with pytest.raises(ControlError):
            min_area_cuts([])
        with pytest.raises(ControlError):
            end_buffer_plan([])

    def test_negative_width_rejected(self):
        with pytest.raises(ControlError):
            min_area_cuts([4, -1])

    def test_last_cut_always_at_end(self):
        plan = min_area_cuts([5, 3, 9, 2, 8, 1])
        assert plan.cuts[-1] == 6

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=512), min_size=1, max_size=9))
    def test_dp_optimal_vs_brute_force(self, widths):
        assert min_area_cuts(widths).total_bits == brute_force_best(widths)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1024), min_size=1, max_size=40))
    def test_dp_bounded_by_end_plan(self, widths):
        assert min_area_cuts(widths).total_bits <= end_buffer_plan(widths).total_bits

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=256), min_size=2, max_size=20))
    def test_segment_accounting_consistent(self, widths):
        plan = min_area_cuts(widths)
        assert sum(d * w for d, w in plan.segments) == plan.total_bits
        assert sum(d - 1 for d, w in plan.segments) == len(widths)


class TestBufferCap:
    def test_cap_one_equals_end_plan(self):
        widths = [100, 5, 200, 7, 300]
        capped = min_area_cuts(widths, max_buffers=1)
        assert capped.total_bits == end_buffer_plan(widths).total_bits

    def test_cap_relaxation_monotone(self):
        widths = [100, 5, 200, 7, 300, 2, 50]
        costs = [
            min_area_cuts(widths, max_buffers=k).total_bits for k in range(1, 6)
        ]
        assert costs == sorted(costs, reverse=True)

    def test_uncapped_at_least_as_good_as_capped(self):
        widths = [17, 4, 90, 3, 60, 2, 44]
        assert (
            min_area_cuts(widths).total_bits
            <= min_area_cuts(widths, max_buffers=2).total_bits
        )
