"""Tests for source-level broadcast trees (repro.ir.broadcast_tree)."""

import pytest

from repro.errors import IRError
from repro.ir.broadcast_tree import build_broadcast_tree, tree_fanout_profile
from repro.ir.builder import DFGBuilder
from repro.ir.ops import Opcode
from repro.ir.types import i32


def fan_dfg(consumers=16):
    b = DFGBuilder("fan")
    x = b.input("x", i32)
    y = b.input("y", i32)
    for i in range(consumers):
        b.add(x, y, name=f"o{i}")
    return b.build(), x


class TestTreeConstruction:
    def test_fanout_bounded_by_arity(self):
        dfg, x = fan_dfg(16)
        build_broadcast_tree(dfg, x, arity=4)
        profile = tree_fanout_profile(dfg, "x")
        assert all(f <= 4 for f in profile)

    def test_reg_count_returned(self):
        dfg, x = fan_dfg(16)
        inserted = build_broadcast_tree(dfg, x, arity=4)
        assert inserted == dfg.count(Opcode.REG)
        assert inserted >= 4

    def test_one_level_when_small(self):
        dfg, x = fan_dfg(4)
        build_broadcast_tree(dfg, x, arity=4)
        assert dfg.count(Opcode.REG) >= 1
        dfg.verify()

    def test_explicit_levels(self):
        dfg, x = fan_dfg(8)
        build_broadcast_tree(dfg, x, arity=4, levels=2)
        # root -> level0 regs -> level1 regs -> adders
        profile = tree_fanout_profile(dfg, "x")
        assert len(profile) >= 3

    def test_consumers_rewired_not_duplicated(self):
        dfg, x = fan_dfg(9)
        adds_before = dfg.count(Opcode.ADD)
        build_broadcast_tree(dfg, x, arity=3)
        assert dfg.count(Opcode.ADD) == adds_before

    def test_foreign_value_rejected(self):
        dfg, _x = fan_dfg(4)
        other = DFGBuilder().input("z", i32)
        with pytest.raises(IRError):
            build_broadcast_tree(dfg, other, arity=4)

    def test_unconsumed_value_rejected(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        with pytest.raises(IRError):
            build_broadcast_tree(b.dfg, x)

    def test_bad_arity_rejected(self):
        dfg, x = fan_dfg(4)
        with pytest.raises(IRError):
            build_broadcast_tree(dfg, x, arity=1)


class TestTreeScheduling:
    def test_tree_adds_latency(self):
        """Each tree level costs a cycle — the latency/fanout trade the
        paper weighs against backend duplication."""
        from repro.delay.hls_model import HlsDelayModel
        from repro.scheduling.chaining import ChainingScheduler

        flat, x1 = fan_dfg(16)
        treed, x2 = fan_dfg(16)
        build_broadcast_tree(treed, x2, arity=4)
        flat_depth = ChainingScheduler(HlsDelayModel(), 3.0).schedule(flat).depth
        tree_depth = ChainingScheduler(HlsDelayModel(), 3.0).schedule(treed).depth
        assert tree_depth >= flat_depth + 2  # two REG levels
