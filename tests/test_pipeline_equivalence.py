"""Equivalence proof: stage caching can never change a flow's answer.

For every registered design × {BASELINE, FULL}, three runs — cold private
store, warm same store, cache disabled — must produce bit-identical
fingerprints and result digests.  Each run rebuilds the design from the
registry, so the equality also covers digest stability across rebuilds
(a spurious design-digest mismatch would surface as a warm journal that
re-ran stages).
"""

from __future__ import annotations

import pytest

from repro.designs import build_design, design_names
from repro.flow import Flow
from repro.opt import BASELINE, FULL
from repro.pipeline import StageArtifactStore

CONFIGS = {"orig": BASELINE, "full": FULL}


@pytest.mark.parametrize("design_name", design_names())
@pytest.mark.parametrize("config_key", sorted(CONFIGS))
def test_cold_warm_disabled_are_bit_identical(
    design_name, config_key, tmp_path, synthetic_table
):
    config = CONFIGS[config_key]
    store = StageArtifactStore(root=str(tmp_path / "stages"))

    def run(stage_cache):
        flow = Flow(calibration=synthetic_table, stage_cache=stage_cache)
        return flow.run(build_design(design_name), config)

    cold = run(store)
    warm = run(store)
    plain = run(False)

    assert warm.fingerprint() == cold.fingerprint()
    assert plain.fingerprint() == cold.fingerprint()
    assert warm.result_digest() == cold.result_digest() == plain.result_digest()

    # The warm run must actually have been served from the store …
    for entry in warm.journal:
        if entry["cacheable"]:
            assert entry["action"] == "skipped", entry
    # … and the disabled run must not have touched it.
    assert all(entry["action"] == "run" for entry in plain.journal)
