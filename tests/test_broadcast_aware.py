"""Tests for the §4.1 broadcast-aware scheduling pass."""

import pytest

from repro.delay.calibrated import CalibratedDelayModel
from repro.ir.builder import DFGBuilder
from repro.ir.ops import Opcode
from repro.ir.passes import unroll_loop
from repro.ir.program import Buffer, Loop
from repro.ir.types import f32, i32
from repro.scheduling.broadcast_aware import audit_chains, broadcast_aware_schedule
from repro.scheduling.chaining import ChainingScheduler
from repro.delay.hls_model import HlsDelayModel

CLOCK = 3.0


def broadcast_chain_dfg(copies=64):
    """A genome-like unrolled chain: shared operand feeds `copies` subs,
    each followed by more chained logic."""
    b = DFGBuilder("bc")
    shared = b.input("shared", i32, loop_invariant=True)
    local = b.input("local", i32)
    d = b.sub(local, shared, name="d")
    e = b.add(d, b.const(5, i32), name="e")
    f = b.sub(e, local, name="f")
    b.store(Buffer("scores", i32, max(copies, 2) * 4, partition=copies), b.input("k", i32), f).attrs[
        "bank_group"
    ] = "per_copy"
    loop = Loop("l", b.build(), trip_count=copies, unroll=copies)
    return unroll_loop(loop).body


class TestAuditChains:
    def test_finds_broadcast_violation(self, calibrated_model):
        dfg = broadcast_chain_dfg()
        baseline = ChainingScheduler(HlsDelayModel(), CLOCK).schedule(dfg)
        violations = audit_chains(baseline, calibrated_model)
        assert violations, "the 64-broadcast sub chain must violate"
        worst = max(v.calibrated_arrival_ns for v in violations)
        assert worst > CLOCK - 0.3

    def test_no_violation_without_broadcast(self, calibrated_model):
        b = DFGBuilder()
        x, y = b.input("x", i32), b.input("y", i32)
        b.sub(b.add(x, y), y)
        baseline = ChainingScheduler(HlsDelayModel(), CLOCK).schedule(b.build())
        assert audit_chains(baseline, calibrated_model) == []

    def test_violation_message_quotes_both_views(self, calibrated_model):
        dfg = broadcast_chain_dfg()
        baseline = ChainingScheduler(HlsDelayModel(), CLOCK).schedule(dfg)
        text = str(audit_chains(baseline, calibrated_model)[0])
        assert "HLS believed" in text and "budget" in text


class TestBroadcastAwareSchedule:
    def test_depth_grows_by_about_one(self, calibrated_model):
        """§5.2: 'the length of the pipeline is 9 originally and 10 after'."""
        dfg = broadcast_chain_dfg()
        result = broadcast_aware_schedule(dfg, CLOCK, calibrated_model)
        assert 1 <= result.extra_stages <= 4

    def test_final_schedule_meets_calibrated_budget(self, calibrated_model):
        dfg = broadcast_chain_dfg()
        result = broadcast_aware_schedule(dfg, CLOCK, calibrated_model)
        # Re-audit the final schedule with the calibrated model: no chain
        # violations should remain (single-op overruns are pipelined away).
        assert audit_chains(result.schedule, calibrated_model) == []

    def test_mem_ops_pipelined_for_big_buffers(self, calibrated_model):
        b = DFGBuilder()
        big = Buffer("big", i32, 1 << 20)
        data = b.input("d", i32)
        b.store(big, b.input("a", i32), data)
        result = broadcast_aware_schedule(b.build(), CLOCK, calibrated_model)
        assert any("buffer access" in e for e in result.edits)

    def test_fmul_broadcast_gets_extra_pipelining(self, calibrated_model):
        b = DFGBuilder()
        x = b.input("x", f32, loop_invariant=True)
        ws = [b.input(f"w{i}", f32) for i in range(256)]
        for w in ws:
            b.mul(x, w)
        result = broadcast_aware_schedule(b.build(), CLOCK, calibrated_model)
        muls = [op for op in result.schedule.dfg.ops if op.opcode is Opcode.MUL]
        assert all(int(m.attrs.get("extra_latency", 0)) >= 1 for m in muls)

    def test_via_report_equivalent(self, calibrated_model):
        d1 = broadcast_chain_dfg()
        d2 = broadcast_chain_dfg()
        r1 = broadcast_aware_schedule(d1, CLOCK, calibrated_model, via_report=True)
        r2 = broadcast_aware_schedule(d2, CLOCK, calibrated_model, via_report=False)
        assert r1.schedule.depth == r2.schedule.depth
        assert len(r1.chain_violations) == len(r2.chain_violations)

    def test_baseline_unchanged_for_hls_model(self, calibrated_model):
        dfg = broadcast_chain_dfg()
        result = broadcast_aware_schedule(dfg, CLOCK, calibrated_model)
        # the baseline must reflect the blind model: violations only appear
        # under calibrated re-timing, not in the baseline's own bookkeeping
        assert result.baseline.model_name == "hls"
        assert result.chain_violations
