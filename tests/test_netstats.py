"""Tests for the broadcast census (repro.analysis.netstats)."""

from repro.analysis.netstats import ClassStats, census, format_census
from repro.opt import BASELINE, FULL
from repro.physical.placement import Placement
from repro.rtl.netlist import CellKind, Netlist, NetKind

from conftest import make_mini_stream_design


def star_netlist(fanout=20, kind=NetKind.ENABLE):
    nl = Netlist("star")
    hub = nl.new_cell("hub", CellKind.LOGIC, delay_ns=0.2)
    sinks = [
        (nl.new_cell(f"s{i}", CellKind.FF, ffs=1, delay_ns=0.1), "ce")
        for i in range(fanout)
    ]
    nl.connect("bcast", hub, sinks, kind=kind)
    return nl


class TestCensus:
    def test_counts(self):
        result = census(star_netlist(20))
        stats = result.classes["enable"]
        assert stats.nets == 1
        assert stats.sinks == 20
        assert stats.max_fanout == 20
        assert stats.max_fanout_net == "bcast"

    def test_mean_fanout(self):
        assert ClassStats(nets=4, sinks=12).mean_fanout == 3.0

    def test_histogram_buckets(self):
        result = census(star_netlist(20))
        assert result.classes["enable"].histogram == {"<=32": 1}

    def test_clockless_excluded(self):
        result = census(star_netlist(4, kind=NetKind.CLOCKLESS))
        assert result.classes == {}

    def test_broadcastiest(self):
        nl = star_netlist(50, kind=NetKind.SYNC)
        small = nl.new_cell("x", CellKind.FF, ffs=1, delay_ns=0.1)
        nl.connect("tiny", small, [(nl.cells["s0"], "d")], kind=NetKind.DATA)
        key, stats = census(nl).broadcastiest()
        assert key == "sync" and stats.max_fanout == 50

    def test_wirelength_with_placement(self):
        nl = star_netlist(2)
        placement = Placement()
        placement.put(nl.cells["hub"], 0, 0)
        placement.put(nl.cells["s0"], 10, 0)
        placement.put(nl.cells["s1"], 0, 5)
        result = census(nl, placement)
        assert result.classes["enable"].total_wirelength == 15.0

    def test_format(self):
        text = format_census(census(star_netlist(20)))
        assert "broadcast census" in text and "bcast" in text


class TestOnGeneratedDesigns:
    def test_full_opt_reduces_worst_enable(self, flow):
        design = make_mini_stream_design(depth=1 << 18)
        orig = flow.run(design, BASELINE)
        opt = flow.run(design, FULL)
        before = census(orig.gen.netlist).classes["enable"].max_fanout
        after = census(opt.gen.netlist).classes["enable"].max_fanout
        assert after < before
