"""Simulation proofs of the §4.3 skid-buffer claims.

These tests are the executable version of the paper's correctness
arguments:

* same outputs as stall control under any back-pressure;
* "the exact same throughput as the original stall-based back-pressure
  control";
* "as long as the depth of the buffer is no smaller than N+1 ... no
  overflow will happen" — and N is genuinely not enough.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FifoOverflowError, SimulationError
from repro.sim.harness import BackpressureSink, compare_control_schemes, run_pipeline
from repro.sim.pipeline import SkidPipeline, StallPipeline, simulate

ITEMS = list(range(300))


class TestFunctionalEquivalence:
    @pytest.mark.parametrize(
        "ready",
        [
            BackpressureSink.always(),
            BackpressureSink.duty(1, 3),
            BackpressureSink.duty(2, 5),
            BackpressureSink.random(0.5, seed=11),
            BackpressureSink.burst_stall(37, 13),
        ],
        ids=["always", "duty13", "duty25", "random", "burst"],
    )
    def test_same_outputs(self, ready):
        stall_out, skid_out, _sc, _kc = compare_control_schemes(
            8, ITEMS, ready, fn=lambda x: x * 3 + 1
        )
        assert stall_out == skid_out == [x * 3 + 1 for x in ITEMS]

    def test_depth_one_pipeline(self):
        stall_out, skid_out, _sc, _kc = compare_control_schemes(
            1, ITEMS, BackpressureSink.duty(1, 2)
        )
        assert stall_out == skid_out

    def test_transform_applied_once(self):
        calls = []

        def fn(x):
            calls.append(x)
            return x

        run_pipeline("skid", 4, ITEMS[:50], BackpressureSink.always(), fn=fn)
        assert calls == ITEMS[:50]


class TestThroughput:
    @pytest.mark.parametrize(
        "ready",
        [
            BackpressureSink.always(),
            BackpressureSink.duty(1, 3),
            BackpressureSink.random(0.7, seed=5),
            BackpressureSink.burst_stall(50, 20),
        ],
        ids=["always", "duty13", "random", "burst"],
    )
    def test_skid_matches_stall_cycles(self, ready):
        _so, _ko, stall_cycles, skid_cycles = compare_control_schemes(8, ITEMS, ready)
        assert skid_cycles <= stall_cycles + 8  # identical up to drain skew

    def test_full_rate_when_never_stalled(self):
        out, cycles = run_pipeline("skid", 8, ITEMS, BackpressureSink.always())
        assert cycles == len(ITEMS) + 8  # fill + drain, no bubbles


class TestSkidDepthRule:
    """The N+1 sizing rule, with the paper's literal 'lagged' read gate."""

    @pytest.mark.parametrize("depth", [1, 2, 4, 8, 16])
    def test_depth_plus_one_never_overflows(self, depth):
        pipeline = SkidPipeline(depth, skid_depth=depth + 1, gate="lagged")
        out, _cycles = simulate(
            pipeline, ITEMS, BackpressureSink.burst_stall(60, 25)
        )
        assert out == ITEMS
        assert pipeline.skid.max_occupancy <= depth + 1

    @pytest.mark.parametrize("depth", [2, 4, 8])
    def test_depth_n_overflows(self, depth):
        pipeline = SkidPipeline(depth, skid_depth=depth, gate="lagged")
        with pytest.raises(FifoOverflowError):
            simulate(pipeline, ITEMS, BackpressureSink.burst_stall(60, 25))

    def test_bound_is_tight(self):
        """Adversarial stalls drive occupancy to exactly N+1."""
        pipeline = SkidPipeline(8, skid_depth=9, gate="lagged")
        simulate(pipeline, ITEMS, BackpressureSink.burst_stall(60, 25))
        assert pipeline.skid.max_occupancy == 9

    def test_credit_gate_safe_at_any_capacity(self):
        pipeline = SkidPipeline(8, skid_depth=4, gate="credit")
        out, _cycles = simulate(
            pipeline, ITEMS, BackpressureSink.burst_stall(60, 25)
        )
        assert out == ITEMS  # throttled, but never loses data

    def test_unknown_gate_rejected(self):
        with pytest.raises(SimulationError):
            SkidPipeline(4, gate="psychic")


class TestPropertyBased:
    @settings(max_examples=80, deadline=None)
    @given(
        depth=st.integers(min_value=1, max_value=12),
        count=st.integers(min_value=1, max_value=120),
        pattern=st.lists(st.booleans(), min_size=1, max_size=41),
    )
    def test_equivalence_any_backpressure(self, depth, count, pattern):
        items = list(range(count))
        ready = BackpressureSink.from_bools(pattern)
        if not any(pattern):
            return  # a permanently-stalled sink never drains
        stall_out, skid_out, sc, kc = compare_control_schemes(depth, items, ready)
        assert stall_out == skid_out == items
        # Drain-skew bound: the stall scheme's registered output-FIFO flag
        # can miss a ready slot, deferring the last deliveries to the next
        # ready cycle — up to one pattern period per skew step.
        assert abs(sc - kc) <= depth + len(pattern) + 4

    @settings(max_examples=60, deadline=None)
    @given(
        depth=st.integers(min_value=1, max_value=10),
        pattern=st.lists(st.booleans(), min_size=2, max_size=31),
    )
    def test_lagged_gate_occupancy_bound(self, depth, pattern):
        if not any(pattern):
            return
        pipeline = SkidPipeline(depth, skid_depth=depth + 1, gate="lagged")
        out, _ = simulate(
            pipeline, list(range(80)), BackpressureSink.from_bools(pattern)
        )
        assert out == list(range(80))
        assert pipeline.skid.max_occupancy <= depth + 1


class TestStallPipelineDetails:
    def test_stall_counter_advances(self):
        pipeline = StallPipeline(4)
        simulate(pipeline, ITEMS[:60], BackpressureSink.duty(1, 4))
        assert pipeline.stall_cycles > 0

    def test_invalid_depth(self):
        with pytest.raises(SimulationError):
            StallPipeline(0)
        with pytest.raises(SimulationError):
            SkidPipeline(-1)

    def test_simulation_timeout(self):
        pipeline = StallPipeline(4)
        with pytest.raises(SimulationError):
            simulate(pipeline, ITEMS[:10], lambda _c: False, max_cycles=200)
