"""Tests for the netlist/schedule consistency checker (repro.rtl.checker)."""

import pytest

from repro.control.styles import ControlStyle
from repro.delay.hls_model import HlsDelayModel
from repro.errors import RTLError
from repro.ir.passes import apply_pragmas
from repro.rtl.checker import assert_consistent, check_generated
from repro.rtl.generator import GenOptions, generate_netlist
from repro.scheduling.chaining import ChainingScheduler
from repro.testing import (
    pe_farm_design,
    stream_to_buffer_design,
    unrolled_broadcast_design,
)

CLOCK = 1000.0 / 300


def generated(design, control=ControlStyle.STALL):
    lowered = apply_pragmas(design)
    schedules = {
        (k.name, l.name): ChainingScheduler(HlsDelayModel(), CLOCK).schedule(l.body)
        for k, l in lowered.all_loops()
    }
    return generate_netlist(lowered, schedules, GenOptions(control=control)), schedules


class TestConsistency:
    @pytest.mark.parametrize(
        "design_fn",
        [
            lambda: stream_to_buffer_design(depth=1 << 14),
            lambda: unrolled_broadcast_design(unroll=16),
            lambda: pe_farm_design(pes=6),
        ],
        ids=["stream", "unrolled", "farm"],
    )
    @pytest.mark.parametrize("control", list(ControlStyle))
    def test_generated_designs_consistent(self, design_fn, control):
        gen, schedules = generated(design_fn(), control)
        assert check_generated(gen, schedules) == []

    def test_paper_designs_consistent(self):
        from repro.designs import build_design

        for name in ("genome", "hbm_stencil", "stencil"):
            gen, schedules = generated(build_design(name))
            assert check_generated(gen, schedules) == [], name


class TestDetection:
    def test_missing_cell_detected(self):
        gen, schedules = generated(stream_to_buffer_design(depth=1 << 12))
        # sabotage: drop the store port cell
        victim = next(n for n in gen.netlist.cells if ".st_" in n)
        cell = gen.netlist.cells.pop(victim)
        for net in list(gen.netlist.nets.values()):
            if net.driver is cell or cell in net.sink_cells():
                del gen.netlist.nets[net.name]
        problems = check_generated(gen, schedules)
        assert any("has no cell" in p for p in problems)

    def test_dangling_cell_detected(self):
        from repro.rtl.netlist import CellKind

        gen, schedules = generated(stream_to_buffer_design(depth=1 << 12))
        gen.netlist.new_cell("orphan", CellKind.FF, ffs=1)
        problems = check_generated(gen, schedules)
        assert any("orphan" in p for p in problems)

    def test_assert_raises_with_details(self):
        gen, schedules = generated(stream_to_buffer_design(depth=1 << 12))
        from repro.rtl.netlist import CellKind

        gen.netlist.new_cell("orphan", CellKind.FF, ffs=1)
        with pytest.raises(RTLError, match="orphan"):
            assert_consistent(gen, schedules)

    def test_clean_design_passes_assert(self):
        gen, schedules = generated(stream_to_buffer_design(depth=1 << 12))
        assert_consistent(gen, schedules)
