"""Unit tests for the netlist connectivity indexes.

The maintained ``input_pins``/``driver_nets`` indexes back every hot query
in the physical layer, so they must stay exact across all mutation paths:
``connect``, ``add_sink``, whole-list ``sinks`` assignment, ``driver``
reassignment, ``remove_net`` and ``remove_cell``.  ``validate()`` doubles
as the consistency oracle.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import RTLError
from repro.rtl.netlist import Cell, CellKind, Net, NetKind, Netlist


def _mini() -> Netlist:
    nl = Netlist("idx")
    a = nl.new_cell("a", CellKind.FF, delay_ns=0.1)
    b = nl.new_cell("b", CellKind.LOGIC, delay_ns=0.2)
    c = nl.new_cell("c", CellKind.FF, delay_ns=0.1)
    nl.connect("n_ab", a, [(b, "i0")], kind=NetKind.DATA)
    nl.connect("n_bc", b, [(c, "d")], kind=NetKind.DATA)
    return nl


class TestQueries:
    def test_input_and_driver_queries(self):
        nl = _mini()
        a, b, c = nl.cells["a"], nl.cells["b"], nl.cells["c"]
        assert nl.driver_net_of(a).name == "n_ab"
        assert [n.name for n in nl.driver_nets_of(b)] == ["n_bc"]
        assert nl.input_pins_of(b) == [(nl.nets["n_ab"], "i0")]
        assert nl.input_net_of(c).name == "n_bc"
        assert nl.input_nets_of(a) == []
        assert nl.fanout_of(a) == 1
        nl.validate()

    def test_pin_order_follows_net_registration(self):
        nl = Netlist("order")
        a = nl.new_cell("a", CellKind.FF)
        b = nl.new_cell("b", CellKind.FF)
        sink = nl.new_cell("s", CellKind.LOGIC)
        n1 = nl.connect("n1", a, [(sink, "i0")])
        n2 = nl.connect("n2", b, [(sink, "i1")])
        # A late add_sink on the *older* net must keep seq order.
        n1.add_sink(sink, "i2")
        assert [(n.name, p) for n, p in nl.input_pins_of(sink)] == [
            ("n1", "i0"),
            ("n1", "i2"),
            ("n2", "i1"),
        ]
        assert [n.name for n in nl.input_nets_of(sink)] == ["n1", "n2"]
        nl.validate()


class TestMutations:
    def test_sinks_assignment_reindexes(self):
        nl = _mini()
        b, c = nl.cells["b"], nl.cells["c"]
        net = nl.nets["n_ab"]
        net.sinks = [(c, "d2")]
        assert nl.input_pins_of(b) == []
        assert [(n.name, p) for n, p in nl.input_pins_of(c)] == [
            ("n_ab", "d2"),
            ("n_bc", "d"),
        ]
        nl.validate()

    def test_driver_reassignment_reindexes(self):
        nl = _mini()
        a, b = nl.cells["a"], nl.cells["b"]
        net = nl.nets["n_ab"]
        d = nl.new_cell("d", CellKind.FF)
        net.driver = d
        assert nl.driver_net_of(a) is None
        assert nl.driver_net_of(d) is net
        nl.validate()

    def test_remove_net_and_cell(self):
        nl = _mini()
        with pytest.raises(RTLError):
            nl.remove_cell("b")  # still connected
        nl.remove_net("n_ab")
        nl.remove_net("n_bc")
        nl.remove_cell("b")
        assert "b" not in nl.cells
        with pytest.raises(RTLError):
            nl.remove_net("n_ab")  # already gone
        nl.validate()

    def test_seq_order_survives_remove_and_readd(self):
        nl = _mini()
        net = nl.remove_net("n_ab")
        nl.add_net(net)
        seqs = [n._seq for n in nl.nets.values()]
        assert seqs == sorted(seqs)
        assert list(nl.nets) == ["n_bc", "n_ab"]
        nl.validate()

    def test_raw_dict_mutation_is_caught(self):
        nl = _mini()
        del nl.nets["n_ab"]  # bypasses index maintenance
        with pytest.raises(RTLError):
            nl.validate()


class TestPickling:
    def test_netlist_roundtrip(self):
        nl = _mini()
        clone = pickle.loads(pickle.dumps(nl))
        clone.validate()
        assert [(n.name, n._seq) for n in clone.nets.values()] == [
            (n.name, n._seq) for n in nl.nets.values()
        ]
        assert clone.input_net_of(clone.cells["c"]).name == "n_bc"
