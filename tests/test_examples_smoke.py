"""Smoke-run the example scripts (the cheap ones end-to-end).

The heavyweight examples (quickstart, diagnose_broadcasts,
calibration_study, compare_schedules) build the real device calibration;
they are exercised here with module-level import + a targeted function
call where possible, and fully by the benchmark session.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, argv=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        return runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    except SystemExit as exc:  # argparse-style mains exit cleanly
        assert not exc.code, f"{name} exited with {exc.code}"
        return None
    finally:
        sys.argv = old_argv


class TestCheapExamples:
    def test_skid_buffer_sim(self, capsys):
        run_example("skid_buffer_sim.py")
        out = capsys.readouterr().out
        assert "outputs equal=True" in out
        assert "overflow" in out.lower()

    def test_paper_benchmarks_list(self, capsys):
        run_example("paper_benchmarks.py")
        out = capsys.readouterr().out
        assert "genome" in out and "pattern_matching" in out

    def test_dse_demo(self, capsys):
        run_example("dse_demo.py")
        out = capsys.readouterr().out
        assert "interp-equivalent: True" in out
        assert "winner" in out
        assert "re-run winner digest identical: True" in out

    def test_service_demo(self, capsys):
        run_example("service_demo.py")
        out = capsys.readouterr().out
        assert "cold submit : done via compile" in out
        assert "warm submit : served from store" in out
        assert "compiles=2" in out
        assert "rehydrated" in out


class TestExampleSources:
    """Every example imports cleanly and documents itself."""

    @pytest.mark.parametrize("path", sorted(EXAMPLES.glob("*.py")), ids=lambda p: p.name)
    def test_has_docstring_and_main(self, path):
        text = path.read_text()
        assert text.startswith("#!/usr/bin/env python3")
        assert '"""' in text.split("\n", 1)[1][:10]
        assert 'if __name__ == "__main__":' in text

    def test_at_least_five_examples(self):
        assert len(list(EXAMPLES.glob("*.py"))) >= 5
