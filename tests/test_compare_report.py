"""Tests for the before/after optimization report (repro.analysis.compare)."""

import pytest

from repro.analysis import compare_runs, format_delta
from repro.opt import BASELINE, FULL

from conftest import make_mini_stream_design


@pytest.fixture(scope="module")
def delta(synthetic_table):
    from repro.flow import Flow

    flow = Flow(calibration=synthetic_table)
    design = make_mini_stream_design(depth=1 << 18)
    return compare_runs(flow.run(design, BASELINE), flow.run(design, FULL))


# module-scoped fixture needs a module-scoped table
@pytest.fixture(scope="module")
def synthetic_table():
    from conftest import make_synthetic_table

    return make_synthetic_table()


class TestDelta:
    def test_gain_positive(self, delta):
        assert delta.gain_pct > 0

    def test_enable_broadcast_collapsed(self, delta):
        assert delta.worst_fanout_after["enable"] < delta.worst_fanout_before["enable"]

    def test_mem_broadcast_collapsed(self, delta):
        assert delta.worst_fanout_after["mem"] < delta.worst_fanout_before["mem"]

    def test_depth_growth_recorded(self, delta):
        assert delta.depth_delta["k/l"] >= 1

    def test_edits_carried(self, delta):
        assert any("buffer access" in edit for edit in delta.edits)

    def test_utilization_delta_small(self, delta):
        """Table 1's 'marginal area overhead' claim at the report level."""
        assert all(abs(v) < 5.0 for v in delta.utilization_delta.values())


class TestFormatting:
    def test_report_sections(self, delta):
        text = format_delta(delta)
        assert "Fmax:" in text
        assert "worst broadcast fanout" in text
        assert "optimizer edits" in text

    def test_depth_line(self, delta):
        assert "pipeline depth" in format_delta(delta)
