"""HTTP front end + client: routes, status codes, end-to-end compile."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.service import (
    ResultStore,
    ServiceBusyError,
    ServiceClient,
    ServiceError,
    serve_in_thread,
)


@pytest.fixture(scope="module")
def live(tmp_path_factory):
    """One real daemon behind HTTP, shared by the module's tests."""
    root = tmp_path_factory.mktemp("service-http")
    with serve_in_thread(
        store=ResultStore(str(root / "results")),
        quarantine_dir=str(root / "quarantine"),
        workers=2,
        queue_limit=8,
    ) as server:
        client = ServiceClient(server.host, server.port)
        client.wait_ready()
        yield server, client


class TestEndToEnd:
    def test_submit_wait_then_store_hit(self, live):
        server, client = live
        record = client.submit("matmul", config="orig", wait=True)
        assert record["state"] == "done"
        assert record["served_from"] == "compile"
        assert record["submitted_as"] == "queued"
        assert record["summary"]["fmax_mhz"] > 0
        assert len(record["digest"]) == 64

        again = client.submit("matmul", config="orig", wait=True)
        assert again["submitted_as"] == "store"
        assert again["result_digest"] == record["result_digest"]

        # The full FlowResult rehydrates from the shared local store.
        result = client.load_result(record["digest"], store=server.service.store)
        assert result is not None
        assert result.result_digest() == record["result_digest"]

    def test_job_lookup_and_status(self, live):
        server, client = live
        record = client.submit("matmul", config="orig", wait=True)
        fetched = client.job(record["id"])
        assert fetched["state"] == "done"
        assert fetched["digest"] == record["digest"]

        status = client.status()
        assert status["schema"] == "repro-service-status/1"
        assert status["workers"] == 2
        assert status["store"]["entries"] >= 1
        assert status["metrics"]["counters"]["service.compiles"] >= 1

    def test_wait_job_polls_to_terminal_state(self, live):
        _, client = live
        record = client.submit("matmul", config="orig")  # store hit by now
        final = client.wait_job(record["id"], timeout=30)
        assert final["state"] == "done"


class TestHttpErrors:
    def test_unknown_design_404(self, live):
        _, client = live
        with pytest.raises(ServiceError) as excinfo:
            client.submit("not-a-design")
        assert excinfo.value.status == 404
        assert "matmul" in str(excinfo.value)  # lists the valid designs

    def test_bad_config_400(self, live):
        _, client = live
        with pytest.raises(ServiceError) as excinfo:
            client.submit("matmul", config="not-a-config")
        assert excinfo.value.status == 400

    def test_bad_priority_400(self, live):
        _, client = live
        with pytest.raises(ServiceError) as excinfo:
            client.submit("matmul", priority="urgent")
        assert excinfo.value.status == 400

    def test_unknown_job_404(self, live):
        _, client = live
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-9999")
        assert excinfo.value.status == 404

    def test_unknown_route_404_and_bad_method_405(self, live):
        server, _ = live
        base = f"http://{server.host}:{server.port}"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base}/nope")
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base}/submit")  # GET on a POST route
        assert excinfo.value.code == 405

    def test_malformed_json_400(self, live):
        server, _ = live
        req = urllib.request.Request(
            f"http://{server.host}:{server.port}/submit",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req)
        assert excinfo.value.code == 400
        assert "bad JSON" in json.loads(excinfo.value.read())["error"]

    def test_unreachable_daemon_maps_to_status_zero(self):
        client = ServiceClient(port=1)  # nothing listens there
        with pytest.raises(ServiceError) as excinfo:
            client.status()
        assert excinfo.value.status == 0
        assert client.ping() is False


class TestBackpressureOverHttp:
    def test_queue_full_is_429_and_busy_error(self, tmp_path):
        with serve_in_thread(
            store=ResultStore(str(tmp_path / "results")),
            quarantine_dir=str(tmp_path / "quarantine"),
            workers=1,
            queue_limit=0,  # every submission overflows immediately
        ) as server:
            client = ServiceClient(server.host, server.port)
            client.wait_ready()
            with pytest.raises(ServiceBusyError) as excinfo:
                client.submit("matmul", config="orig")
            assert excinfo.value.status == 429
            counters = client.status()["metrics"]["counters"]
            assert counters["service.rejected"] == 1


class TestShutdown:
    def test_shutdown_route_stops_daemon(self, tmp_path):
        with serve_in_thread(
            store=ResultStore(str(tmp_path / "results")),
            quarantine_dir=str(tmp_path / "quarantine"),
            workers=1,
        ) as server:
            client = ServiceClient(server.host, server.port)
            client.wait_ready()
            client.shutdown()
            # Idempotent: a second shutdown against a dead daemon is a no-op.
            client.shutdown()
