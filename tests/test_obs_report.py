"""Report/exporter tests: Chrome trace schema, run reports, CLI flags."""

import json
import re

import pytest

from repro import obs
from repro.__main__ import main
from repro.flow import Flow
from repro.opt import BASELINE, FULL

from conftest import make_mini_stream_design, make_unrolled_compute_design

#: Every stage span one Flow.run must produce, in order (also documented in
#: Flow.run's docstring — see test_docstring_lists_every_stage).
FLOW_STAGES = [
    "pragmas",
    "sync-pruning",
    "calibration",
    "scheduling",
    "ii-analysis",
    "rtl-gen",
    "placement",
    "spreading",
    "replication",
    "retiming",
    "timing",
]


@pytest.fixture(scope="module")
def traced_run(synthetic_table):
    """One traced FULL run on the broadcast-heavy mini design."""
    tracer = obs.Tracer()
    flow = Flow(calibration=synthetic_table)
    with obs.activate(tracer):
        result = flow.run(make_mini_stream_design(depth=1 << 18), FULL)
    return tracer, result


class TestFlowSpans:
    def test_every_stage_has_a_span(self, traced_run):
        tracer, _ = traced_run
        root = tracer.roots[0]
        assert root.name == obs.FLOW_SPAN
        assert [c.name for c in root.children] == FLOW_STAGES

    def test_docstring_lists_every_stage(self):
        doc = Flow.run.__doc__
        for stage in FLOW_STAGES:
            assert f"``{stage}``" in doc, stage

    def test_root_span_carries_run_identity(self, traced_run):
        tracer, result = traced_run
        root = tracer.roots[0]
        assert root.attrs["design"] == result.design
        assert root.attrs["config"] == result.config_label
        assert root.attrs["fmax_mhz"] == pytest.approx(result.fmax_mhz, abs=1e-3)
        assert root.attrs["critical_path_class"] == result.timing.path_class.value

    def test_result_trace_is_root_span(self, traced_run):
        tracer, result = traced_run
        assert result.trace is tracer.roots[0]

    def test_untraced_run_has_no_trace(self, flow, mini_design):
        assert flow.run(mini_design, BASELINE).trace is None

    def test_sync_pruning_span_present_even_when_disabled(self, flow, mini_design):
        tracer = obs.Tracer()
        with obs.activate(tracer):
            flow.run(mini_design, BASELINE)
        span = tracer.roots[0].find("sync-pruning")
        assert span is not None and span.attrs["enabled"] is False


class TestRunReport:
    def test_schema_and_stage_durations(self, traced_run):
        tracer, result = traced_run
        report = obs.run_report(tracer, [result])
        assert report["schema"] == obs.RUN_REPORT_SCHEMA
        (run,) = report["runs"]
        assert [s["name"] for s in run["stages"]] == FLOW_STAGES
        for stage in run["stages"]:
            assert stage["duration_ms"] >= 0.0
        assert sum(s["duration_ms"] for s in run["stages"]) <= run["duration_ms"]

    def test_counters_registers_inserted(self, traced_run):
        tracer, result = traced_run
        (run,) = obs.run_report(tracer, [result])["runs"]
        # §4.1 pipelined the big-buffer access → register modules inserted.
        assert run["counters"]["scheduling.registers_inserted"] >= 1
        assert run["counters"]["scheduling.chain_rechecks"] >= 1

    def test_counters_nets_replicated(self, synthetic_table):
        tracer = obs.Tracer()
        flow = Flow(calibration=synthetic_table)
        with obs.activate(tracer):
            result = flow.run(make_unrolled_compute_design(unroll=64), FULL)
        (run,) = obs.run_report(tracer, [result])["runs"]
        assert run["counters"]["physical.nets_replicated"] >= 1
        assert run["counters"]["physical.replicas_created"] >= 1
        assert run["histograms"]["replication.fanout"]["count"] >= 1

    def test_result_enrichment_and_json_round_trip(self, traced_run):
        tracer, result = traced_run
        report = obs.run_report(tracer, [result])
        (run,) = report["runs"]
        assert run["fmax_mhz"] == pytest.approx(result.fmax_mhz, abs=1e-3)
        assert run["utilization"].keys() == result.utilization.keys()
        assert run["schedule_edits"] == result.schedule_edits
        parsed = json.loads(json.dumps(report))
        assert parsed == report

    def test_report_without_results_still_has_runs(self, traced_run):
        tracer, _ = traced_run
        (run,) = obs.run_report(tracer)["runs"]
        assert run["design"] == "mini"
        assert "utilization" not in run  # enrichment needs the FlowResult


class TestChromeTrace:
    def test_event_schema(self, traced_run):
        tracer, _ = traced_run
        doc = obs.chrome_trace(tracer)
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == len(tracer.all_spans())
        for event in events:
            assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid", "args"}
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        assert doc["displayTimeUnit"] == "ms"

    def test_children_nest_within_parents(self, traced_run):
        tracer, _ = traced_run
        root = tracer.roots[0]
        for child in root.children:
            assert child.start_s >= root.start_s
            assert child.end_s <= root.end_s + 1e-9

    def test_write_chrome_trace_acceptance(self, traced_run, tmp_path):
        """ISSUE acceptance: valid trace with >= 6 distinct stage spans."""
        tracer, _ = traced_run
        path = tmp_path / "t.json"
        obs.write_chrome_trace(str(path), tracer)
        doc = json.loads(path.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        required = {"pragmas", "sync-pruning", "scheduling", "rtl-gen",
                    "placement", "timing"}
        assert required <= names
        assert len(names) >= 6


class TestConsoleRender:
    def test_tree_contains_stages_and_counters(self, traced_run):
        tracer, _ = traced_run
        text = obs.render_console(tracer)
        for stage in FLOW_STAGES:
            assert stage in text
        assert "ms" in text
        assert re.search(r"scheduling\.registers_inserted=\d+", text)


class TestSummaryTolerance:
    def test_summary_with_partial_utilization(self, flow, mini_design):
        result = flow.run(mini_design, BASELINE)
        result.utilization.pop("DSP", None)
        result.utilization.pop("BRAM", None)
        text = result.summary()  # must not raise KeyError
        assert "DSP=0%" in text and "MHz" in text


class TestCliObservability:
    def test_run_json_flag(self, capsys):
        assert main(["run", "vector_arith", "--config", "orig", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == obs.RUN_REPORT_SCHEMA
        (run,) = report["runs"]
        assert run["design"] == "vector_arith" and run["config"] == "orig"
        assert [s["name"] for s in run["stages"]] == FLOW_STAGES
        assert run["fmax_mhz"] > 0

    def test_run_trace_out_flag(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        assert main(
            ["run", "vector_arith", "--config", "orig,ctrl",
             "--trace-out", str(out)]
        ) == 0
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"pragmas", "sync-pruning", "scheduling", "rtl-gen",
                "placement", "timing"} <= names

    def test_trace_subcommand(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(
            ["trace", "vector_arith", "--config", "orig", "--out", str(out)]
        ) == 0
        assert json.loads(out.read_text())["traceEvents"]
        assert "placement" in capsys.readouterr().out
