"""Tests for the generic parameter sweep utility (repro.experiments.sweep)."""

import pytest

from repro.errors import IRError
from repro.experiments.sweep import format_sweep, sweep
from repro.flow import Flow
from repro.opt import BASELINE, FULL
from repro.testing import stream_to_buffer_design


@pytest.fixture(scope="module")
def result():
    from conftest import make_synthetic_table

    flow = Flow(calibration=make_synthetic_table())
    return sweep(
        stream_to_buffer_design,
        "depth",
        [1 << 14, 1 << 17],
        configs={"orig": BASELINE, "full": FULL},
        flow=flow,
    )


class TestSweep:
    def test_rows_cover_values(self, result):
        assert [row.value for row in result.rows] == [1 << 14, 1 << 17]

    def test_series_extraction(self, result):
        assert len(result.series("orig")) == 2
        assert all(v > 0 for v in result.series("full"))

    def test_full_wins_at_large_size(self, result):
        big = result.rows[-1]
        assert big.fmax("full") > big.fmax("orig")

    def test_crossover_helper(self, result):
        value = result.crossover("full", "orig")
        assert value in (1 << 14, 1 << 17)

    def test_crossover_none_when_never(self, result):
        assert result.crossover("orig", "orig") is None

    def test_format(self, result):
        text = format_sweep(result)
        assert "depth" in text and "orig" in text and "full" in text

    def test_registry_name_builder(self):
        from conftest import make_synthetic_table

        flow = Flow(calibration=make_synthetic_table())
        out = sweep(
            "dynamic_struct",
            "heap_words",
            [1 << 14],
            configs={"orig": BASELINE},
            flow=flow,
        )
        assert out.design == "dynamic_struct"
        assert out.rows[0].fmax("orig") > 0


class TestBuilderErrorPolish:
    def test_unknown_cmp_kind_is_irerror(self):
        from repro.ir.builder import DFGBuilder
        from repro.ir.types import i32

        b = DFGBuilder()
        x = b.input("x", i32)
        with pytest.raises(IRError, match="unknown comparison"):
            b.cmp("approximately", x, x)
