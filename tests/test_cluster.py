"""Cluster layer: membership, peer-fetch store, router, HTTP front end.

Unit coverage runs against fake node clients (no sockets, no compiles),
so every routing decision — cache, busy spill, failover, semantic-error
propagation — is deterministic.  One thread-mode :class:`LocalCluster`
integration test exercises the real wiring end to end (real daemons,
real worker processes, one real compile).
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.cluster.local import LocalCluster
from repro.cluster.membership import Membership
from repro.cluster.peer import PeerResultStore
from repro.cluster.ring import HashRing
from repro.cluster.router import ClusterRouter
from repro.cluster.server import RouterServer
from repro.errors import ReproError
from repro.obs.journal import EventJournal, read_events
from repro.service.client import ServiceBusyError, ServiceClient, ServiceError
from repro.service.request import FlowRequest
from repro.service.store import ResultStore
from repro.service.worker import execute_request


# ---------------------------------------------------------------------------
# fakes
# ---------------------------------------------------------------------------
class _FakeNodeClient:
    """Stands in for a node's ServiceClient: canned submit/health."""

    def __init__(self, node_id, submit=None, health=None):
        self.node_id = node_id
        self.submit_behavior = submit
        self.health_behavior = health
        self.submits = 0
        self.health_calls = 0

    def submit(self, design, **kwargs):
        self.submits += 1
        behavior = self.submit_behavior
        if callable(behavior):
            behavior = behavior(design, **kwargs)
        if isinstance(behavior, Exception):
            raise behavior
        if behavior is None:
            behavior = {"state": "done", "result_digest": f"rd-{self.node_id}"}
        return dict(behavior)

    def health(self):
        self.health_calls += 1
        behavior = self.health_behavior
        if isinstance(behavior, Exception):
            raise behavior
        if behavior is None:
            behavior = {"ok": True, "node_id": self.node_id, "queue_depth": 0}
        return dict(behavior)

    def metrics(self):
        return (
            "# TYPE repro_service_compiles counter\n"
            "repro_service_compiles_total 1\n"
        )


def _fleet(fakes, replicas=2, **kwargs):
    """A Membership whose clients are the given ``{port: fake}`` map."""
    membership = Membership(
        replicas=replicas,
        client_factory=lambda host, port: fakes[port],
        probe_client_factory=lambda host, port: fakes[port],
        **kwargs,
    )
    for port, fake in fakes.items():
        membership.add(fake.node_id, "127.0.0.1", port)
    return membership


def _three_fakes(**overrides):
    fakes = {
        9000 + index: _FakeNodeClient(f"n{index}") for index in range(3)
    }
    for port, fake in fakes.items():
        if fake.node_id in overrides:
            fake.submit_behavior = overrides[fake.node_id]
    return fakes


# ---------------------------------------------------------------------------
# membership
# ---------------------------------------------------------------------------
class TestMembership:
    def test_add_is_idempotent_and_versions_bump(self):
        membership = _fleet(_three_fakes())
        version = membership.version
        membership.add("n0", "127.0.0.1", 9000)  # re-add: no ring change
        assert membership.version == version
        assert sorted(i.node_id for i in membership.alive()) == ["n0", "n1", "n2"]

    def test_mark_dead_keeps_record_for_revival(self):
        membership = _fleet(_three_fakes())
        version = membership.version
        membership.mark_dead("n1", reason="test")
        assert membership.version == version + 1
        info = membership.node("n1")
        assert info is not None and info.state == "dead"
        assert "n1" not in membership.ring
        membership.mark_alive("n1")
        assert membership.node("n1").alive and "n1" in membership.ring

    def test_owners_returns_alive_replicas(self):
        membership = _fleet(_three_fakes())
        digest = "a" * 64
        owners = membership.owners(digest)
        assert len(owners) == 2
        assert owners[0].node_id != owners[1].node_id
        membership.mark_dead(owners[0].node_id)
        reowned = membership.owners(digest)
        assert owners[0].node_id not in [i.node_id for i in reowned]

    def test_replicas_validated(self):
        with pytest.raises(ReproError):
            Membership(replicas=0)

    def test_snapshot_schema(self):
        membership = _fleet(_three_fakes())
        snapshot = membership.snapshot()
        assert snapshot["schema"] == "repro-cluster-membership/1"
        assert sorted(snapshot["alive"]) == ["n0", "n1", "n2"]
        assert len(snapshot["members"]) == 3

    def test_probe_sweep_kills_after_max_misses_and_revives(self, tmp_path):
        journal = EventJournal(str(tmp_path / "j.jsonl"), source="test")
        fakes = _three_fakes()
        membership = _fleet(fakes, max_misses=2, journal=journal)
        fakes[9001].health_behavior = ServiceError("down", status=0)
        membership.probe_all()
        assert membership.node("n1").alive  # one miss is not death
        membership.probe_all()
        assert not membership.node("n1").alive
        fakes[9001].health_behavior = None  # node answers again
        membership.probe_all()
        assert membership.node("n1").alive
        events = [e["event"] for e in read_events(str(tmp_path / "j.jsonl"))]
        assert "cluster.node_down" in events and "cluster.node_up" in events

    def test_probe_sweep_records_vitals(self):
        fakes = _three_fakes()
        membership = _fleet(fakes)
        membership.probe_all()
        assert membership.node("n0").vitals.get("node_id") == "n0"


# ---------------------------------------------------------------------------
# peer-fetch store
# ---------------------------------------------------------------------------
class _Peer:
    def __init__(self, node_id, host="127.0.0.1", port=9999):
        self.node_id, self.host, self.port = node_id, host, port


class _WiredPeerStore(PeerResultStore):
    """PeerResultStore whose network is a ``{(host, port): fake}`` map."""

    def __init__(self, *args, peers=None, **kwargs):
        super().__init__(*args, **kwargs)
        self._fake_peers = peers or {}

    def _peer_client(self, host, port):
        return self._fake_peers[(host, port)]


class _FakePeerTransport:
    def __init__(self, payload=None, error=None):
        self.payload, self.error = payload, error
        self.calls = 0

    def get_result_bytes(self, digest):
        self.calls += 1
        if self.error is not None:
            raise self.error
        return self.payload


@pytest.fixture(scope="module")
def compiled(tmp_path_factory):
    """One real compiled entry to move between stores (module-scoped:
    compiling is the expensive part of these tests)."""
    root = tmp_path_factory.mktemp("owner-store")
    request = FlowRequest.make("vector_arith", config="orig")
    result = execute_request(request)
    store = ResultStore(str(root))
    entry = store.put(request, result)
    return {
        "digest": entry.digest,
        "result_digest": entry.result_digest,
        "payload": store.get_bytes(entry.digest),
    }


class TestPeerResultStore:
    def test_fetch_installs_locally(self, tmp_path, compiled):
        owner = _Peer("n-owner")
        store = _WiredPeerStore(
            root=str(tmp_path / "local"),
            node_id="n-local",
            owners_for=lambda digest: [owner],
            peers={("127.0.0.1", 9999): _FakePeerTransport(compiled["payload"])},
        )
        entry = store.get(compiled["digest"])
        assert entry is not None
        assert entry.result_digest == compiled["result_digest"]
        assert store.peer_hits == 1
        # Second get is a plain local hit — no second fetch.
        assert store.get(compiled["digest"]) is not None
        assert store.peer_hits == 1

    def test_own_node_is_skipped(self, tmp_path, compiled):
        transport = _FakePeerTransport(compiled["payload"])
        store = _WiredPeerStore(
            root=str(tmp_path / "local"),
            node_id="n-local",
            owners_for=lambda digest: [_Peer("n-local")],  # only ourselves
            peers={("127.0.0.1", 9999): transport},
        )
        assert store.get(compiled["digest"]) is None
        assert transport.calls == 0 and store.peer_misses == 1

    def test_corrupt_payload_rejected(self, tmp_path, compiled):
        store = _WiredPeerStore(
            root=str(tmp_path / "local"),
            node_id="n-local",
            owners_for=lambda digest: [_Peer("n-owner")],
            peers={("127.0.0.1", 9999): _FakePeerTransport(b"not a pickle")},
        )
        assert store.get(compiled["digest"]) is None
        assert store.peer_fetch_errors == 1
        assert ResultStore.get(store, compiled["digest"]) is None  # nothing installed

    def test_dead_peer_is_a_miss_not_an_error(self, tmp_path, compiled):
        store = _WiredPeerStore(
            root=str(tmp_path / "local"),
            node_id="n-local",
            owners_for=lambda digest: [_Peer("n-owner")],
            peers={
                ("127.0.0.1", 9999): _FakePeerTransport(
                    error=ServiceError("refused", status=0)
                )
            },
        )
        assert store.get(compiled["digest"]) is None
        assert store.peer_fetch_errors == 1 and store.peer_misses == 1

    def test_get_bytes_never_consults_peers(self, tmp_path, compiled):
        """The recursion guard: the /result route reads through
        ``get_bytes``, which must answer from local disk only."""
        transport = _FakePeerTransport(compiled["payload"])
        store = _WiredPeerStore(
            root=str(tmp_path / "local"),
            node_id="n-local",
            owners_for=lambda digest: [_Peer("n-owner")],
            peers={("127.0.0.1", 9999): transport},
        )
        assert store.get_bytes(compiled["digest"]) is None
        assert transport.calls == 0


# ---------------------------------------------------------------------------
# router
# ---------------------------------------------------------------------------
def _owners_of(router, design="matmul", **kwargs):
    digest = router.request_for(design, **kwargs).digest()
    return digest, [i.node_id for i in router.membership.owners(digest)]


class TestRouter:
    def test_done_records_are_cached(self):
        fakes = _three_fakes()
        router = ClusterRouter(_fleet(fakes))
        first = router.submit("matmul", wait=True)
        assert first["served_from"] == "compile"
        assert first["node"] in ("n0", "n1", "n2")
        second = router.submit("matmul", wait=True)
        assert second["served_from"] == "router-cache"
        assert second["result_digest"] == first["result_digest"]
        assert router.cache_hits == 1 and router.requests == 2
        assert sum(f.submits for f in fakes.values()) == 1

    def test_non_terminal_records_are_not_cached(self):
        fakes = _three_fakes()
        for fake in fakes.values():
            fake.submit_behavior = {"state": "queued", "job_id": "j1"}
        router = ClusterRouter(_fleet(fakes))
        router.submit("matmul", wait=False)
        router.submit("matmul", wait=False)
        assert router.cache_hits == 0
        # ...and both went to the same (primary) node: routing is stable.
        assert sorted(f.submits for f in fakes.values()) == [0, 0, 2]

    def test_busy_primary_spills_to_backup_without_death(self):
        fakes = _three_fakes()
        router = ClusterRouter(_fleet(fakes))
        digest, (primary, backup) = _owners_of(router)
        by_id = {f.node_id: f for f in fakes.values()}
        by_id[primary].submit_behavior = ServiceBusyError("queue full", status=429)
        record = router.submit("matmul", wait=True)
        assert record["node"] == backup
        assert router.busy_redirects == 1 and router.failovers == 0
        assert router.membership.node(primary).alive  # busy != dead

    def test_dead_primary_fails_over_and_journals(self, tmp_path):
        journal_path = str(tmp_path / "j.jsonl")
        fakes = _three_fakes()
        router = ClusterRouter(
            _fleet(fakes), journal=EventJournal(journal_path, source="router")
        )
        digest, (primary, backup) = _owners_of(router)
        by_id = {f.node_id: f for f in fakes.values()}
        by_id[primary].submit_behavior = ServiceError("refused", status=0)
        record = router.submit("matmul", wait=True)
        assert record["node"] == backup
        assert router.failovers == 1
        assert not router.membership.node(primary).alive
        (event,) = read_events(journal_path, grep="cluster.failover")
        assert event["dead_node"] == primary
        assert event["backup_node"] == backup
        assert event["digest"] == digest

    def test_semantic_errors_propagate_without_failover(self):
        fakes = _three_fakes()
        router = ClusterRouter(_fleet(fakes))
        _, (primary, _) = _owners_of(router)
        by_id = {f.node_id: f for f in fakes.values()}
        by_id[primary].submit_behavior = ServiceError("unknown design", status=400)
        with pytest.raises(ServiceError) as excinfo:
            router.submit("matmul", wait=True)
        assert excinfo.value.status == 400
        assert router.failovers == 0
        assert router.membership.node(primary).alive

    def test_every_replica_down_raises_status_zero(self):
        fakes = _three_fakes()
        for fake in fakes.values():
            fake.submit_behavior = ServiceError("refused", status=0)
        router = ClusterRouter(_fleet(fakes))
        with pytest.raises(ServiceError) as excinfo:
            router.submit("matmul", wait=True)
        assert excinfo.value.status == 0
        assert router.failovers == 1  # primary→backup; backup had no successor

    def test_empty_cluster_raises(self):
        membership = Membership()
        router = ClusterRouter(membership)
        with pytest.raises(ServiceError) as excinfo:
            router.submit("matmul")
        assert "no alive nodes" in str(excinfo.value)

    def test_status_document(self):
        fakes = _three_fakes()
        router = ClusterRouter(_fleet(fakes))
        router.submit("matmul", wait=True)
        document = router.status()
        assert document["schema"] == "repro-cluster-status/1"
        assert document["replicas"] == 2
        assert len(document["nodes"]) == 3
        assert all("vitals" in node for node in document["nodes"])
        assert document["router"]["requests"] == 1

    def test_metrics_are_node_labeled(self):
        fakes = _three_fakes()
        router = ClusterRouter(_fleet(fakes))
        text = router.metrics_text()
        for node_id in ("n0", "n1", "n2"):
            assert f'node="{node_id}"' in text
        assert "repro_cluster_requests_total 0" in text
        assert "repro_cluster_nodes_alive 3" in text


# ---------------------------------------------------------------------------
# HTTP front end
# ---------------------------------------------------------------------------
class TestRouterServer:
    @pytest.fixture()
    def served(self):
        fakes = _three_fakes()
        router = ClusterRouter(_fleet(fakes))
        with RouterServer(router) as server:
            yield fakes, router, server

    def _get(self, server, path):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def test_healthz_status_membership_metrics(self, served):
        _, _, server = served
        status, raw = self._get(server, "/healthz")
        assert status == 200 and json.loads(raw)["schema"] == "repro-cluster/1"
        status, raw = self._get(server, "/status")
        assert json.loads(raw)["schema"] == "repro-cluster-status/1"
        status, raw = self._get(server, "/membership")
        assert json.loads(raw)["schema"] == "repro-cluster-membership/1"
        status, raw = self._get(server, "/metrics")
        assert status == 200 and b"repro_cluster_nodes_alive" in raw
        assert self._get(server, "/nope")[0] == 404

    def test_submit_routes_and_annotates(self, served):
        fakes, router, server = served
        client = ServiceClient(host=server.host, port=server.port, retries=0)
        record = client.submit("matmul", wait=True)
        assert record["state"] == "done"
        assert record["node"] in ("n0", "n1", "n2")
        repeat = client.submit("matmul", wait=True)
        assert repeat["served_from"] == "router-cache"
        assert router.cache_hits == 1

    def test_submit_missing_design_is_400(self, served):
        _, _, server = served
        client = ServiceClient(host=server.host, port=server.port, retries=0)
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/submit", payload={})
        assert excinfo.value.status == 400

    def test_submit_with_dead_fleet_is_503(self, served):
        fakes, _, server = served
        for fake in fakes.values():
            fake.submit_behavior = ServiceError("refused", status=0)
        client = ServiceClient(host=server.host, port=server.port, retries=0)
        with pytest.raises(ServiceError) as excinfo:
            client.submit("matmul", wait=True)
        assert excinfo.value.status == 503


# ---------------------------------------------------------------------------
# client retry ladder (satellite: backoff + jitter on connection failures)
# ---------------------------------------------------------------------------
class _Response:
    def __init__(self, status=200, body=b'{"ok": true}'):
        self.status = status
        self._body = body

    def read(self):
        return self._body


class _FlakyConnection:
    """Module-level HTTPConnection stand-in: fail N times, then answer."""

    failures = 0
    attempts = 0
    exception = ConnectionRefusedError("refused")

    @classmethod
    def reset(cls, failures, exception=None):
        cls.failures = failures
        cls.attempts = 0
        if exception is not None:
            cls.exception = exception

    def __init__(self, host, port, timeout=None):
        pass

    def request(self, method, path, body=None, headers=None):
        cls = type(self)
        cls.attempts += 1
        if cls.attempts <= cls.failures:
            raise cls.exception

    def getresponse(self):
        return _Response()

    def close(self):
        pass


@pytest.fixture()
def flaky(monkeypatch):
    sleeps = []
    monkeypatch.setattr(http.client, "HTTPConnection", _FlakyConnection)
    monkeypatch.setattr(time, "sleep", sleeps.append)
    _FlakyConnection.reset(0, ConnectionRefusedError("refused"))
    return sleeps


class TestClientRetry:
    def test_transient_failures_are_retried(self, flaky):
        _FlakyConnection.reset(2)
        client = ServiceClient(port=1, retries=2, retry_backoff_s=0.1)
        assert client._request("GET", "/status") == {"ok": True}
        assert _FlakyConnection.attempts == 3
        assert len(flaky) == 2  # slept between attempts, not after success

    def test_backoff_grows_and_jitters_within_cap(self, flaky):
        _FlakyConnection.reset(99)
        client = ServiceClient(
            port=1, retries=3, retry_backoff_s=0.1, retry_backoff_cap_s=0.2
        )
        with pytest.raises(ServiceError):
            client._request("GET", "/status")
        assert len(flaky) == 3
        # Full jitter: each sleep is in [0.5, 1.5] × min(base·2^k, cap).
        for sleep, nominal in zip(flaky, (0.1, 0.2, 0.2)):
            assert nominal * 0.5 <= sleep <= nominal * 1.5

    def test_exhausted_retries_surface_status_zero(self, flaky):
        _FlakyConnection.reset(99)
        client = ServiceClient(host="127.0.0.1", port=1, retries=2)
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/status")
        assert excinfo.value.status == 0
        assert "cannot reach repro service at 127.0.0.1:1" in str(excinfo.value)
        assert "after 3 attempt(s)" in str(excinfo.value)

    def test_sigkilled_server_shapes_are_retried(self, flaky):
        """BadStatusLine (empty response from a dying server) is an
        ``http.client.HTTPException``, not an OSError — it must retry."""
        _FlakyConnection.reset(1, http.client.BadStatusLine(""))
        client = ServiceClient(port=1, retries=1)
        assert client._request("GET", "/status") == {"ok": True}
        assert _FlakyConnection.attempts == 2

    def test_probes_do_not_retry(self, flaky):
        _FlakyConnection.reset(99, ConnectionRefusedError("refused"))
        client = ServiceClient(port=1, retries=5)
        assert client.ping() is False
        assert _FlakyConnection.attempts == 1 and not flaky

    def test_retries_zero_is_fail_fast(self, flaky):
        _FlakyConnection.reset(99)
        client = ServiceClient(port=1, retries=0)
        with pytest.raises(ServiceError):
            client._request("GET", "/status")
        assert _FlakyConnection.attempts == 1 and not flaky


# ---------------------------------------------------------------------------
# thread-mode integration: the real wiring, one real compile
# ---------------------------------------------------------------------------
class TestLocalClusterIntegration:
    def test_route_cache_peer_fetch_and_failover(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        cluster = LocalCluster(
            nodes=3, base_dir=str(tmp_path / "cluster"), workers=1
        )
        with cluster:
            # 1. cold submit routes to the digest's primary owner
            record = cluster.router.submit("vector_arith", wait=True)
            assert record["state"] == "done"
            digest = cluster.router.request_for("vector_arith").digest()
            owners = [i.node_id for i in cluster.membership.owners(digest)]
            assert record["node"] == owners[0]

            # 2. repeat is a router-cache hit (no node round-trip)
            repeat = cluster.router.submit("vector_arith", wait=True)
            assert repeat["served_from"] == "router-cache"
            assert repeat["result_digest"] == record["result_digest"]

            # 3. a non-owner node asked directly peer-fetches the payload
            outsider = next(
                handle for handle in cluster.nodes
                if handle.node_id not in owners
            )
            direct = outsider.client().submit("vector_arith", wait=True)
            assert direct["result_digest"] == record["result_digest"]
            assert cluster.journal_events(grep="cluster.peer_fetch")

            # 4. kill the primary of a fresh digest → exactly one failover
            cluster.membership.stop_heartbeat()  # keep the death ours to see
            target = owners[0]
            cluster.stop_node(target)
            clock = next(
                clock for clock in range(150, 400)
                if cluster.membership.owners(
                    cluster.router.request_for(
                        "vector_arith", clock_mhz=float(clock)
                    ).digest()
                )[0].node_id == target
            )
            failed_over = cluster.router.submit(
                "vector_arith", clock_mhz=float(clock), wait=True
            )
            assert failed_over["state"] == "done"
            assert failed_over["node"] != target
            assert cluster.router.failovers == 1
            assert not cluster.membership.node(target).alive
            (event,) = cluster.journal_events(grep="cluster.failover")
            assert event["dead_node"] == target
