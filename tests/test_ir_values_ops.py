"""Tests for repro.ir.values and repro.ir.ops."""

import pytest

from repro.errors import IRError, TypeMismatchError
from repro.ir.dfg import DFG
from repro.ir.ops import (
    BINARY_ARITH_OPS,
    CMP_OPS,
    FIFO_OPS,
    MEM_OPS,
    Opcode,
    Operation,
    result_type_of,
)
from repro.ir.program import Buffer, Fifo
from repro.ir.types import f32, i1, i32
from repro.ir.values import Value


def v(name="x", t=i32):
    return Value(name, t)


class TestValue:
    def test_input_flags(self):
        x = v()
        assert x.is_input and not x.is_const

    def test_const_flags(self):
        c = Value("c", i32, const=5)
        assert c.is_const and not c.is_input

    def test_fanout_counts_operand_slots(self):
        x = v("x")
        r = Value("r", i32)
        Operation(Opcode.MUL, [x, x], r)
        assert x.fanout == 2  # both mul pins read x
        assert len(x.uses) == 1  # one consuming op

    def test_fanout_across_ops(self):
        x = v("x")
        a, b = Value("a", i32), Value("b", i32)
        Operation(Opcode.ADD, [x, x], a)
        y = v("y")
        Operation(Opcode.SUB, [x, y], b)
        assert x.fanout == 3

    def test_remove_use_keeps_remaining_slots(self):
        x, y = v("x"), v("y")
        r = Value("r", i32)
        op = Operation(Opcode.ADD, [x, y], r)
        op.replace_operand(y, x)
        assert x.fanout == 2
        assert y.fanout == 0
        assert op not in y.uses


class TestOperationValidation:
    def test_arity_enforced(self):
        with pytest.raises(IRError):
            Operation(Opcode.ADD, [v()], Value("r", i32))

    def test_mixed_float_int_rejected(self):
        with pytest.raises(TypeMismatchError):
            Operation(Opcode.ADD, [v("a", i32), v("b", f32)], Value("r", f32))

    def test_cmp_result_must_be_bool(self):
        with pytest.raises(TypeMismatchError):
            Operation(Opcode.LT, [v("a"), v("b")], Value("r", i32))

    def test_select_cond_must_be_bool(self):
        with pytest.raises(TypeMismatchError):
            Operation(
                Opcode.SELECT, [v("c", i32), v("a"), v("b")], Value("r", i32)
            )

    def test_select_arms_must_match(self):
        with pytest.raises(TypeMismatchError):
            Operation(
                Opcode.SELECT, [v("c", i1), v("a", i32), v("b", f32)], Value("r", i32)
            )

    def test_load_requires_buffer_attr(self):
        with pytest.raises(IRError):
            Operation(Opcode.LOAD, [v("addr")], Value("r", i32))

    def test_fifo_requires_fifo_attr(self):
        with pytest.raises(IRError):
            Operation(Opcode.FIFO_WRITE, [v("d")], None)

    def test_call_requires_latency(self):
        with pytest.raises(IRError):
            Operation(Opcode.CALL, [v("a")], Value("r", i32), {"callee": "f"})

    def test_const_requires_result(self):
        with pytest.raises(IRError):
            Operation(Opcode.CONST, [], None, {"value": 1})


class TestOperationProperties:
    def test_latency_defaults(self):
        add = Operation(Opcode.ADD, [v("a"), v("b")], Value("r", i32))
        assert add.latency == 0
        assert add.is_combinational

    def test_reg_latency(self):
        reg = Operation(Opcode.REG, [v("a")], Value("r", i32))
        assert reg.latency == 1
        assert not reg.is_combinational

    def test_call_latency_from_attrs(self):
        call = Operation(
            Opcode.CALL, [v("a")], Value("r", i32), {"callee": "f", "latency": 7}
        )
        assert call.latency == 7

    def test_store_is_side_effecting(self):
        buf = Buffer("b", i32, 16)
        st = Operation(Opcode.STORE, [v("a"), v("d")], None, {"buffer": buf})
        assert st.is_side_effecting

    def test_replace_operand_count(self):
        x, y, z = v("x"), v("y"), v("z")
        op = Operation(Opcode.ADD, [x, x], Value("r", i32))
        assert op.replace_operand(x, y) == 2
        assert op.operands == [y, y]
        assert op.replace_operand(z, x) == 0


class TestOpcodeSets:
    def test_sets_disjoint(self):
        assert not (CMP_OPS & BINARY_ARITH_OPS)
        assert not (MEM_OPS & FIFO_OPS)

    def test_str(self):
        assert str(Opcode.ADD) == "add"


class TestResultTypeOf:
    def test_cmp_is_bool(self):
        assert result_type_of(Opcode.EQ, [v("a"), v("b")], None) == i1

    def test_arith_infers_common(self):
        assert result_type_of(Opcode.ADD, [v("a", i32), v("b", i32)], None) == i32

    def test_sinks_none(self):
        assert result_type_of(Opcode.STORE, [v("a"), v("d")], None) is None

    def test_select_takes_arm_type(self):
        assert (
            result_type_of(Opcode.SELECT, [v("c", i1), v("a", f32), v("b", f32)], None)
            == f32
        )

    def test_load_needs_buffer(self):
        with pytest.raises(IRError):
            result_type_of(Opcode.LOAD, [v("a")], None)

    def test_explicit_overrides(self):
        assert result_type_of(Opcode.ZEXT, [v("a", i32)], f32) == f32
