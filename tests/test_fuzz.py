"""Differential fuzzing harness: generator, checks, shrinker, corpus.

The corpus replay at the bottom is the regression net for every latent
bug the fuzzer has found: each ``tests/fuzz_corpus/*.json`` document is a
minimal program that diverged under a since-fixed bug, replayed through
the same checks on every test run.
"""

from __future__ import annotations

import glob
import json
import os

import pytest

import repro.ir.passes as passes
from repro.__main__ import main
from repro.fuzz import build_program, generate_spec, run_checks, shrink
from repro.fuzz.harness import CHECK_GROUPS, run_campaign
from repro.fuzz.reference import run_reference
from repro.fuzz.spec import OpSpec, ProgramSpec, SpecError
from repro.ir.ops import Opcode
from repro.sim.dataflow import DataflowSim

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "fuzz_corpus")


def _buggy_cse_key(op):
    """The pre-fix CSE key: opcode+operands only, blind to type/attrs."""
    if op.is_side_effecting or op.opcode is Opcode.REG:
        return None
    if op.opcode is Opcode.CONST:
        return (op.opcode, op.result.type, repr(op.attrs.get("value")))
    return (op.opcode, tuple(id(v) for v in op.operands))


class TestGenerator:
    def test_deterministic_per_seed_and_index(self):
        assert generate_spec(2020, 9).to_dict() == generate_spec(2020, 9).to_dict()

    def test_different_indices_differ(self):
        dicts = [generate_spec(2020, i).to_dict() for i in range(8)]
        assert len({json.dumps(d, sort_keys=True) for d in dicts}) > 1

    def test_generated_programs_build_and_roundtrip(self):
        for index in range(25):
            spec = generate_spec(11, index)
            built = build_program(spec)
            assert built.design.name == spec.name
            again = ProgramSpec.from_json(spec.to_json())
            assert again.to_dict() == spec.to_dict()

    def test_stimuli_cover_every_read(self):
        # rate-matching invariant: the reference must drain without underflow
        for index in range(15):
            built = build_program(generate_spec(3, index))
            result = run_reference(built.design, built.stimuli, params=built.params)
            assert result.firings  # every loop fired its full trip count


class TestChecks:
    def test_clean_programs_produce_no_divergences(self):
        for index in range(15):
            spec = generate_spec(2020, index)
            assert run_checks(spec, checks=("oracle", "passes")) == []

    def test_oracle_matches_simulator_outputs(self):
        spec = generate_spec(2020, 0)
        built = build_program(spec)
        reference = run_reference(built.design, built.stimuli, params=built.params)
        sim = DataflowSim(
            build_program(spec).design, built.stimuli, params=built.params
        )
        assert sim.run().outputs == reference.outputs

    def test_broken_pass_is_caught(self, monkeypatch):
        monkeypatch.setattr(passes, "_cse_key", _buggy_cse_key)
        caught = []
        for index in range(120):
            divs = run_checks(generate_spec(7, index), checks=("passes",))
            caught.extend(d for d in divs if d.check == "passes:cse")
            if caught:
                break
        assert caught, "differential harness missed a miscompiling CSE"

    def test_unknown_check_rejected(self):
        with pytest.raises(Exception):
            run_checks(generate_spec(2020, 0), checks=("bogus",))


class TestShrinker:
    def failing_spec(self, monkeypatch):
        monkeypatch.setattr(passes, "_cse_key", _buggy_cse_key)
        for index in range(120):
            spec = generate_spec(7, index)
            if any(
                d.check == "passes:cse"
                for d in run_checks(spec, checks=("passes",))
            ):
                return spec
        pytest.fail("no failing program found for the shrinker to chew on")

    def test_shrinks_monotonically_and_still_fails(self, monkeypatch):
        spec = self.failing_spec(monkeypatch)

        def still_fails(candidate):
            return any(
                d.check == "passes:cse"
                for d in run_checks(candidate, checks=("passes",))
            )

        small = shrink(spec, still_fails)
        assert small is not None
        assert small.size() <= spec.size()
        assert still_fails(small)

    def test_non_reproducing_failure_returns_none(self):
        assert shrink(generate_spec(2020, 0), lambda _s: False) is None

    def test_invalid_candidates_are_skipped(self, monkeypatch):
        # a predicate that raises SpecError on anything but the original
        spec = generate_spec(2020, 1)
        original = spec.to_json()

        def picky(candidate):
            if candidate.to_json() != original:
                raise SpecError("mutant")
            return True

        assert shrink(spec, picky).to_json() == original


class TestCampaign:
    def test_clean_campaign(self, tmp_path):
        report = run_campaign(
            seed=2020, count=5, checks=CHECK_GROUPS, corpus_dir=str(tmp_path)
        )
        assert report.ok
        assert report.programs == 5
        document = report.to_dict()
        assert document["schema"] == "repro-fuzz-report/1"
        assert document["divergences"] == []
        assert list(tmp_path.iterdir()) == []  # nothing to reproduce

    def test_budget_cuts_generation_short(self):
        report = run_campaign(
            seed=2020, count=10_000, checks=("oracle",), budget_s=0.0
        )
        assert report.budget_exhausted
        assert report.programs < 10_000

    def test_divergence_written_to_corpus(self, tmp_path, monkeypatch):
        monkeypatch.setattr(passes, "_cse_key", _buggy_cse_key)
        report = run_campaign(
            seed=7,
            count=25,
            checks=("passes",),
            corpus_dir=str(tmp_path),
        )
        assert not report.ok
        entries = list(tmp_path.glob("*.json"))
        assert entries
        document = json.loads(entries[0].read_text())
        assert document["schema"] == "repro-fuzz-corpus/1"
        ProgramSpec.from_dict(document["program"])  # must round-trip


class TestCli:
    def test_fuzz_exit_zero_when_clean(self, capsys):
        assert main(["fuzz", "--seed", "2020", "--count", "3",
                     "--checks", "oracle,passes"]) == 0
        assert "divergences=0" in capsys.readouterr().out

    def test_seed_accepted_before_subcommand(self, capsys):
        assert main(["--seed", "5", "fuzz", "--count", "2",
                     "--checks", "oracle", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["seed"] == 5

    def test_unknown_check_is_usage_error(self):
        assert main(["fuzz", "--checks", "bogus"]) == 2


def _corpus_documents():
    paths = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))
    assert paths, "fuzz corpus is empty"
    return paths


@pytest.mark.parametrize(
    "path", _corpus_documents(), ids=lambda p: os.path.basename(p)
)
def test_corpus_replay(path):
    """Every archived reproducer must stay clean under its checks."""
    with open(path) as handle:
        document = json.load(handle)
    assert document["schema"] == "repro-fuzz-corpus/1"
    spec = ProgramSpec.from_dict(document["program"])
    divergences = run_checks(spec, checks=tuple(document["checks"]))
    assert divergences == [], [d.summary() for d in divergences]


def test_corpus_entries_detect_their_bug(monkeypatch):
    """Sensitivity guard: the CSE reproducers must fail under the old key
    (proving the corpus actually exercises the fixed code path)."""
    monkeypatch.setattr(passes, "_cse_key", _buggy_cse_key)
    for name in ("cse_slice_lsb", "cse_zext_width"):
        with open(os.path.join(CORPUS_DIR, f"{name}.json")) as handle:
            document = json.load(handle)
        spec = ProgramSpec.from_dict(document["program"])
        divs = run_checks(spec, checks=tuple(document["checks"]))
        assert any(d.check == "passes:cse" for d in divs), name
