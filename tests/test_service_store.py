"""The content-addressed result store: atomicity, LRU, crash tolerance."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.designs import build_design
from repro.errors import ReproError
from repro.flow import Flow
from repro.opt import BASELINE
from repro.service.request import FlowRequest
from repro.service.store import STORE_SCHEMA, ResultStore


@pytest.fixture(scope="module")
def flow_result(synthetic_table):
    """One real FlowResult, shared read-only by every test here."""
    return Flow(calibration=synthetic_table).run(build_design("matmul"), BASELINE)


@pytest.fixture()
def store(tmp_path):
    return ResultStore(str(tmp_path / "results"), max_entries=3)


def _request(seed: int = 2020) -> FlowRequest:
    return FlowRequest.make("matmul", config="orig", seed=seed)


class TestRoundtrip:
    def test_put_then_get(self, store, flow_result):
        request = _request()
        entry = store.put(request, flow_result)
        assert entry.digest == request.digest()
        hit = store.get(request.digest())
        assert hit is not None
        assert hit.result_digest == flow_result.result_digest()
        assert hit.summary["design"] == flow_result.design
        assert hit.summary["fmax_mhz"] == pytest.approx(flow_result.fmax_mhz)

    def test_load_result_reproduces_digest(self, store, flow_result):
        request = _request()
        store.put(request, flow_result)
        loaded = store.load_result(request.digest())
        assert loaded is not None
        assert loaded.result_digest() == flow_result.result_digest()
        assert loaded.fingerprint() == flow_result.fingerprint()

    def test_miss_returns_none(self, store):
        assert store.get("0" * 64) is None
        assert store.load_result("0" * 64) is None

    def test_len_counts_payloads(self, store, flow_result):
        assert len(store) == 0
        store.put(_request(1), flow_result)
        store.put(_request(2), flow_result)
        assert len(store) == 2

    def test_put_is_idempotent(self, store, flow_result):
        request = _request()
        first = store.put(request, flow_result)
        second = store.put(request, flow_result)
        assert first.result_digest == second.result_digest
        assert len(store) == 1


class TestDurability:
    def test_no_temp_files_survive_put(self, store, flow_result):
        store.put(_request(), flow_result)
        leftovers = [n for n in os.listdir(store.root) if n.endswith(".tmp")]
        assert leftovers == []

    def test_sidecar_readable_without_unpickling(self, store, flow_result):
        request = _request()
        store.put(request, flow_result)
        with open(store._meta_path(request.digest())) as handle:
            meta = json.load(handle)
        assert meta["schema"] == STORE_SCHEMA
        assert meta["request"]["design"] == "matmul"
        assert meta["payload_bytes"] > 0

    def test_missing_payload_is_a_miss(self, store, flow_result):
        """Sidecar without payload (crash between the two writes of an
        eviction) must read as a miss, never an error."""
        request = _request()
        store.put(request, flow_result)
        os.unlink(store._payload_path(request.digest()))
        assert store.get(request.digest()) is None

    def test_corrupt_sidecar_is_a_miss(self, store, flow_result):
        request = _request()
        store.put(request, flow_result)
        with open(store._meta_path(request.digest()), "w") as handle:
            handle.write("{not json")
        assert store.get(request.digest()) is None

    def test_schema_mismatch_raises(self, store, flow_result):
        import pickle

        request = _request()
        store.put(request, flow_result)
        with open(store._payload_path(request.digest()), "wb") as handle:
            pickle.dump({"schema": "something-else/9"}, handle)
        with pytest.raises(ReproError, match="schema"):
            store.get(request.digest()).load()


class TestLru:
    def _age(self, store, digest, seconds_ago):
        then = time.time() - seconds_ago
        for path in (store._payload_path(digest), store._meta_path(digest)):
            os.utime(path, (then, then))

    def test_put_evicts_least_recently_used(self, store, flow_result):
        digests = []
        for seed in (1, 2, 3):
            entry = store.put(_request(seed), flow_result)
            digests.append(entry.digest)
            self._age(store, entry.digest, seconds_ago=100 - seed)
        entry4 = store.put(_request(4), flow_result)
        assert entry4.meta["evicted"] == 1
        assert len(store) == 3
        assert store.get(digests[0]) is None  # oldest gone
        assert store.get(digests[1]) is not None
        assert store.get(digests[2]) is not None

    def test_get_refreshes_recency(self, store, flow_result):
        digests = []
        for seed in (1, 2, 3):
            entry = store.put(_request(seed), flow_result)
            digests.append(entry.digest)
            self._age(store, entry.digest, seconds_ago=100 - seed)
        # Touch the oldest: it must now survive the next eviction.
        assert store.get(digests[0]) is not None
        store.put(_request(4), flow_result)
        assert store.get(digests[0]) is not None
        assert store.get(digests[1]) is None  # second-oldest paid instead

    def test_entries_sorted_lru_first(self, store, flow_result):
        for seed in (1, 2):
            entry = store.put(_request(seed), flow_result)
            self._age(store, entry.digest, seconds_ago=100 - seed)
        records = store.entries()
        assert [r["request"]["seed"] for r in records] == [1, 2]

    def test_max_entries_validated(self, tmp_path):
        with pytest.raises(ReproError):
            ResultStore(str(tmp_path), max_entries=0)
