"""Tests for the fabric model and the placer."""

import pytest

from repro.errors import PhysicalError, PlacementError
from repro.physical.device import DEVICES, get_device
from repro.physical.fabric import BRAM_COL, CLB, DSP_COL, Fabric, Occupancy
from repro.physical.placement import Placer
from repro.rtl.netlist import CellKind, Netlist


class TestDevices:
    def test_catalog_complete(self):
        assert set(DEVICES) == {"aws-f1", "zc706", "alveo-u50", "virtex-7"}

    def test_unknown_device(self):
        with pytest.raises(PhysicalError):
            get_device("spartan-3")

    def test_utilization_percentages(self):
        dev = get_device("aws-f1")
        util = dev.utilization(dev.luts // 2, 0, 0, 0)
        assert util["LUT"] == pytest.approx(50.0)


class TestFabric:
    @pytest.fixture(scope="class")
    def fabric(self):
        return Fabric(get_device("aws-f1"))

    def test_capacity_covers_device(self, fabric):
        dev = fabric.device
        clb = sum(
            fabric.rows * 64 for x in range(fabric.cols) if fabric.col_type(x) == CLB
        )
        bram = sum(
            fabric.rows for x in range(fabric.cols) if fabric.col_type(x) == BRAM_COL
        )
        dsp = sum(
            fabric.rows * 2 for x in range(fabric.cols) if fabric.col_type(x) == DSP_COL
        )
        assert clb >= dev.luts
        assert bram >= dev.bram36
        assert dsp >= dev.dsps

    def test_special_columns_interleaved(self, fabric):
        bram_cols = [x for x in range(fabric.cols) if fabric.col_type(x) == BRAM_COL]
        assert len(bram_cols) >= 2
        gaps = [b - a for a, b in zip(bram_cols, bram_cols[1:])]
        assert max(gaps) <= 4 * (fabric.cols // len(bram_cols))

    def test_ring_radius_zero(self, fabric):
        assert list(fabric.ring(5, 5, 0)) == [(5, 5)]

    def test_ring_counts(self, fabric):
        ring1 = list(fabric.ring(50, 50, 1))
        assert len(ring1) == 8
        assert len(set(ring1)) == 8

    def test_ring_clipped_at_border(self, fabric):
        ring = list(fabric.ring(0, 0, 1))
        assert all(fabric.in_bounds(x, y) for x, y in ring)
        assert len(ring) == 3

    def test_nearest_tiles_ordered_by_distance(self, fabric):
        cx, cy = fabric.center
        tiles = []
        gen = fabric.nearest_tiles(cx, cy, CLB)
        for _ in range(50):
            tiles.append(next(gen))
        dists = [max(abs(x - cx), abs(y - cy)) for x, y in tiles]
        assert dists == sorted(dists)


class TestOccupancy:
    def test_take_and_free(self):
        fabric = Fabric(get_device("zc706"))
        occ = Occupancy(fabric)
        x = next(i for i in range(fabric.cols) if fabric.col_type(i) == CLB)
        assert occ.take(x, 0, 10) == 10
        assert occ.free_at(x, 0) == 64 - 10

    def test_take_clamps(self):
        fabric = Fabric(get_device("zc706"))
        occ = Occupancy(fabric)
        x = next(i for i in range(fabric.cols) if fabric.col_type(i) == CLB)
        assert occ.take(x, 0, 1000) == 64

    def test_release(self):
        fabric = Fabric(get_device("zc706"))
        occ = Occupancy(fabric)
        x = next(i for i in range(fabric.cols) if fabric.col_type(i) == CLB)
        occ.take(x, 0, 30)
        occ.release([(x, 0, 30)])
        assert occ.free_at(x, 0) == 64

    def test_allocate_spills_to_neighbors(self):
        fabric = Fabric(get_device("zc706"))
        occ = Occupancy(fabric)
        chunks = occ.allocate(*fabric.center, CLB, 1000)
        assert sum(u for _x, _y, u in chunks) == 1000
        assert len(chunks) >= 1000 // 64

    def test_allocate_out_of_capacity(self):
        fabric = Fabric(get_device("zc706"))
        occ = Occupancy(fabric)
        with pytest.raises(PlacementError):
            occ.allocate(*fabric.center, DSP_COL, 10_000)


def chain_netlist(n=20):
    nl = Netlist("chain")
    prev = nl.new_cell("c0", CellKind.FF, ffs=8, width=8, delay_ns=0.1)
    for i in range(1, n):
        cur = nl.new_cell(f"c{i}", CellKind.LOGIC, luts=8, delay_ns=0.2)
        nl.connect(f"n{i}", prev, [(cur, "i")])
        prev = cur
    return nl


class TestPlacer:
    def test_all_cells_placed(self):
        nl = chain_netlist()
        fabric = Fabric(get_device("aws-f1"))
        placement = Placer(fabric).place(nl)
        assert set(placement.pos) == set(nl.cells)

    def test_deterministic(self):
        fabric = Fabric(get_device("aws-f1"))
        p1 = Placer(fabric, seed=7).place(chain_netlist())
        p2 = Placer(fabric, seed=7).place(chain_netlist())
        assert p1.pos == p2.pos

    def test_seed_matters(self):
        fabric = Fabric(get_device("aws-f1"))
        p1 = Placer(fabric, seed=1).place(chain_netlist())
        p2 = Placer(fabric, seed=2).place(chain_netlist())
        assert p1.pos != p2.pos

    def test_chain_locality(self):
        """Connected cells land near each other."""
        nl = chain_netlist(30)
        fabric = Fabric(get_device("aws-f1"))
        placement = Placer(fabric).place(nl)
        for i in range(1, 30):
            a = placement.pos[f"c{i - 1}"]
            b = placement.pos[f"c{i}"]
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) < 25

    def test_bram_floorplan_contiguous(self):
        nl = Netlist("banks")
        src = nl.new_cell("src", CellKind.FF, ffs=32, width=32, delay_ns=0.1)
        brams = [
            nl.new_cell(f"bank{i}", CellKind.BRAM, brams=1, delay_ns=0.8)
            for i in range(300)
        ]
        nl.connect("w", src, [(b, "din") for b in brams])
        fabric = Fabric(get_device("aws-f1"))
        placement = Placer(fabric).place(nl)
        for i in range(1, 300):
            a = placement.pos[f"bank{i - 1}"]
            b = placement.pos[f"bank{i}"]
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) <= 30

    def test_port_pinned_to_edge(self):
        nl = chain_netlist()
        pad = nl.new_cell("pad", CellKind.PORT, delay_ns=0.1)
        nl.connect("io", pad, [(nl.cells["c0"], "ext")])
        fabric = Fabric(get_device("aws-f1"))
        placement = Placer(fabric).place(nl)
        assert placement.pos["pad"][0] <= 2.0

    def test_big_macro_does_not_displace_small_logic(self):
        nl = chain_netlist(10)
        nl.new_cell("macro", CellKind.CTRL, luts=300_000, ffs=300_000, delay_ns=0.25)
        fabric = Fabric(get_device("aws-f1"))
        placement = Placer(fabric).place(nl)
        # the small chain stays compact despite the 7000-tile macro
        xs = [placement.pos[f"c{i}"][0] for i in range(10)]
        ys = [placement.pos[f"c{i}"][1] for i in range(10)]
        assert (max(xs) - min(xs)) + (max(ys) - min(ys)) < 40

    def test_control_sink_distance_pays_full_radius(self):
        nl = Netlist("n")
        a = nl.new_cell("a", CellKind.FF, ffs=1, delay_ns=0.1)
        macro = nl.new_cell("m", CellKind.CTRL, luts=100_000, ffs=100_000, delay_ns=0.25)
        nl.connect("e", a, [(macro, "ce")])
        fabric = Fabric(get_device("aws-f1"))
        placement = Placer(fabric).place(nl)
        assert placement.distance(a, macro, control_sink=True) > placement.distance(
            a, macro
        )
