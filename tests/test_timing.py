"""Tests for static timing analysis (repro.physical.timing)."""

import pytest

from repro.errors import PhysicalError
from repro.physical.netdelay import CONNECTION_NS, NS_PER_TILE
from repro.physical.placement import Placement
from repro.physical.timing import MIN_PERIOD_NS, SETUP_NS, TimingAnalyzer
from repro.rtl.netlist import Cell, CellKind, Netlist, NetKind


def build_path(dist=10, logic_delay=1.0):
    """reg -> logic -> reg with controlled geometry."""
    nl = Netlist("p")
    a = nl.new_cell("a", CellKind.FF, ffs=1, delay_ns=0.1)
    c = nl.new_cell("c", CellKind.LOGIC, luts=4, delay_ns=logic_delay)
    q = nl.new_cell("q", CellKind.FF, ffs=1, delay_ns=0.1)
    nl.connect("n1", a, [(c, "i")])
    nl.connect("n2", c, [(q, "d")], kind=NetKind.DATA)
    placement = Placement()
    placement.put(a, 0, 0)
    placement.put(c, dist / 2, 0)
    placement.put(q, dist, 0)
    return nl, placement


class TestBasicPaths:
    def test_exact_arithmetic(self):
        nl, placement = build_path(dist=10, logic_delay=1.0)
        result = TimingAnalyzer(nl, placement).analyze()
        wires = 2 * CONNECTION_NS + 10 * NS_PER_TILE
        expected = 0.1 + wires + 1.0 + SETUP_NS
        assert result.raw_period_ns == pytest.approx(expected)

    def test_min_period_floor(self):
        nl, placement = build_path(dist=0, logic_delay=0.05)
        result = TimingAnalyzer(nl, placement).analyze()
        assert result.period_ns == MIN_PERIOD_NS
        assert result.raw_period_ns < MIN_PERIOD_NS

    def test_fmax_inverse(self):
        nl, placement = build_path(dist=30, logic_delay=2.0)
        result = TimingAnalyzer(nl, placement).analyze()
        assert result.fmax_mhz == pytest.approx(1000.0 / result.period_ns)

    def test_startpoint_endpoint(self):
        nl, placement = build_path()
        result = TimingAnalyzer(nl, placement).analyze()
        assert result.startpoint == "a"
        assert result.endpoint == "q"

    def test_path_hops_ordered(self):
        nl, placement = build_path()
        result = TimingAnalyzer(nl, placement).analyze()
        arrivals = [hop.arrival_ns for hop in result.critical_path]
        assert arrivals == sorted(arrivals)


class TestWorstPathSelection:
    def test_picks_longer_branch(self):
        nl = Netlist("w")
        a = nl.new_cell("a", CellKind.FF, ffs=1, delay_ns=0.1)
        fast = nl.new_cell("fast", CellKind.LOGIC, delay_ns=0.2)
        slow = nl.new_cell("slow", CellKind.LOGIC, delay_ns=3.0)
        q1 = nl.new_cell("q1", CellKind.FF, ffs=1, delay_ns=0.1)
        q2 = nl.new_cell("q2", CellKind.FF, ffs=1, delay_ns=0.1)
        nl.connect("n0", a, [(fast, "i"), (slow, "i")])
        nl.connect("n1", fast, [(q1, "d")])
        nl.connect("n2", slow, [(q2, "d")])
        placement = Placement()
        for cell in nl.cells.values():
            placement.put(cell, 0, 0)
        result = TimingAnalyzer(nl, placement).analyze()
        assert result.endpoint == "q2"

    def test_multi_level_chain_accumulates(self):
        nl = Netlist("chain")
        a = nl.new_cell("a", CellKind.FF, ffs=1, delay_ns=0.1)
        prev = a
        placement = Placement()
        placement.put(a, 0, 0)
        for i in range(5):
            c = nl.new_cell(f"c{i}", CellKind.LOGIC, delay_ns=0.5)
            nl.connect(f"n{i}", prev, [(c, "i")])
            placement.put(c, 0, 0)
            prev = c
        q = nl.new_cell("q", CellKind.FF, ffs=1, delay_ns=0.1)
        nl.connect("out", prev, [(q, "d")])
        placement.put(q, 0, 0)
        result = TimingAnalyzer(nl, placement).analyze()
        expected = 0.1 + 6 * CONNECTION_NS + 5 * 0.5 + SETUP_NS
        assert result.raw_period_ns == pytest.approx(expected)


class TestClassification:
    def _netlist_with_kinds(self, kind):
        nl = Netlist("k")
        a = nl.new_cell("a", CellKind.FIFO, delay_ns=0.45)
        gate = nl.new_cell("g", CellKind.LOGIC, delay_ns=2.0)
        q = nl.new_cell("q", CellKind.FF, ffs=1, delay_ns=0.1)
        nl.connect("st", a, [(gate, "i")], kind=NetKind.STATUS)
        nl.connect("en", gate, [(q, "ce")], kind=kind)
        placement = Placement()
        for cell in nl.cells.values():
            placement.put(cell, 0, 0)
        return nl, placement

    def test_enable_class_dominates(self):
        nl, placement = self._netlist_with_kinds(NetKind.ENABLE)
        result = TimingAnalyzer(nl, placement).analyze()
        assert result.path_class is NetKind.ENABLE

    def test_class_periods_cover_all_kinds(self):
        nl, placement = self._netlist_with_kinds(NetKind.SYNC)
        result = TimingAnalyzer(nl, placement).analyze()
        assert "sync" in result.class_periods

    def test_clockless_excluded(self):
        nl = Netlist("cl")
        pad = nl.new_cell("pad", CellKind.PORT, delay_ns=0.1)
        fifo = nl.new_cell("f", CellKind.FIFO, delay_ns=0.45)
        q = nl.new_cell("q", CellKind.FF, ffs=1, delay_ns=0.1)
        nl.connect("ext", pad, [(fifo, "ext")], kind=NetKind.CLOCKLESS)
        nl.connect("d", fifo, [(q, "d")], kind=NetKind.DATA)
        placement = Placement()
        placement.put(pad, 0, 0)
        placement.put(fifo, 100, 0)  # far: would dominate if timed
        placement.put(q, 100, 0)
        result = TimingAnalyzer(nl, placement).analyze()
        assert result.startpoint == "f"


class TestErrors:
    def test_no_endpoints(self):
        nl = Netlist("none")
        a = nl.new_cell("a", CellKind.FF, delay_ns=0.1)
        c = nl.new_cell("c", CellKind.LOGIC, delay_ns=0.3)
        nl.connect("n", a, [(c, "i")])
        placement = Placement()
        placement.put(a, 0, 0)
        placement.put(c, 0, 0)
        with pytest.raises(PhysicalError):
            TimingAnalyzer(nl, placement).analyze()

    def test_comb_cycle_detected(self):
        nl = Netlist("cyc")
        c1 = nl.new_cell("c1", CellKind.LOGIC, delay_ns=0.3)
        c2 = nl.new_cell("c2", CellKind.LOGIC, delay_ns=0.3)
        q = nl.new_cell("q", CellKind.FF, ffs=1, delay_ns=0.1)
        nl.connect("f", c1, [(c2, "i")])
        nl.connect("b", c2, [(c1, "i"), (q, "d")])
        placement = Placement()
        for cell in nl.cells.values():
            placement.put(cell, 0, 0)
        with pytest.raises(PhysicalError, match="cycle"):
            TimingAnalyzer(nl, placement).analyze()


class TestSummary:
    def test_summary_mentions_class(self):
        nl, placement = build_path()
        result = TimingAnalyzer(nl, placement).analyze()
        assert "data" in result.summary()
        assert "MHz" in result.summary()
