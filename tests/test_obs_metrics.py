"""Bounded-reservoir histograms: exact aggregates, deterministic sampling.

The daemon observes a latency per job forever; the reservoir bounds memory
while ``count``/``sum``/``min``/``max`` stay exact and percentiles stay an
unbiased estimate of the stream.
"""

from __future__ import annotations

from repro.obs.metrics import (
    RESERVOIR_SIZE,
    Histogram,
    MetricsRegistry,
    global_registry,
)


class TestReservoirBounds:
    def test_samples_never_exceed_limit(self):
        hist = Histogram()
        for value in range(RESERVOIR_SIZE * 5):
            hist.observe(float(value))
        assert len(hist.samples) == RESERVOIR_SIZE

    def test_aggregates_exact_past_the_bound(self):
        hist = Histogram()
        n = RESERVOIR_SIZE * 3
        for value in range(1, n + 1):
            hist.observe(value)
        assert hist.count == n
        assert hist.total == n * (n + 1) // 2
        assert hist.min_value == 1
        assert hist.max_value == n

    def test_below_bound_percentile_is_exact(self):
        hist = Histogram()
        for value in range(1, 101):
            hist.observe(value)
        assert hist.percentile(50) == 50
        assert hist.percentile(90) == 90
        assert hist.percentile(100) == 100

    def test_reservoir_percentile_tracks_distribution(self):
        hist = Histogram()
        for value in range(1, RESERVOIR_SIZE * 10 + 1):
            hist.observe(value)
        # Uniform stream over [1, 10240]: the sampled median must land
        # near the true median (well within a quartile).
        true_median = RESERVOIR_SIZE * 5
        assert abs(hist.percentile(50) - true_median) < true_median / 2

    def test_identical_streams_build_identical_reservoirs(self):
        a, b = Histogram(), Histogram()
        for value in range(RESERVOIR_SIZE * 2):
            a.observe(value * 0.5)
            b.observe(value * 0.5)
        assert a.samples == b.samples  # fixed-seed RNG: replay-stable

    def test_legacy_samples_construction_adopts_stream(self):
        hist = Histogram(samples=[3.0, 1.0, 2.0])
        assert hist.count == 3
        assert hist.total == 6.0
        assert (hist.min_value, hist.max_value) == (1.0, 3.0)


class TestMerge:
    def test_merge_sums_exact_aggregates(self):
        a, b = Histogram(), Histogram()
        for value in (1.0, 2.0, 3.0):
            a.observe(value)
        for value in (10.0, 20.0):
            b.observe(value)
        a.merge_from(b)
        assert a.count == 5
        assert a.total == 36.0
        assert (a.min_value, a.max_value) == (1.0, 20.0)

    def test_merge_downsample_is_deterministic(self):
        def build():
            a, b = Histogram(), Histogram()
            for value in range(RESERVOIR_SIZE):
                a.observe(float(value))
                b.observe(float(value) + 0.5)
            a.merge_from(b)
            return a

        one, two = build(), build()
        assert one.samples == two.samples
        assert len(one.samples) == RESERVOIR_SIZE
        assert one.count == RESERVOIR_SIZE * 2

    def test_merge_empty_is_identity(self):
        a = Histogram()
        a.observe(7.0)
        before = (list(a.samples), a.count, a.total)
        a.merge_from(Histogram())
        assert (list(a.samples), a.count, a.total) == before


class TestStateDict:
    def test_round_trip_preserves_exact_aggregates(self):
        hist = Histogram()
        for value in range(RESERVOIR_SIZE * 2):
            hist.observe(float(value))
        clone = Histogram.from_state(hist.state_dict())
        assert clone.samples == hist.samples
        assert clone.count == hist.count
        assert clone.total == hist.total
        assert clone.min_value == hist.min_value
        assert clone.max_value == hist.max_value


class TestRegistry:
    def test_registry_merge_folds_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("latency", 1.0)
        b.observe("latency", 3.0)
        merged = MetricsRegistry.merged([a, b])
        hist = merged.histograms["latency"]
        assert hist.count == 2
        assert hist.total == 4.0

    def test_global_registry_is_a_process_singleton(self):
        assert global_registry() is global_registry()
        marker = "test.obs_metrics.marker"
        before = global_registry().counter(marker)
        global_registry().add(marker)
        assert global_registry().counter(marker) == before + 1
