"""Tests for the net-delay law and backend register replication."""

import pytest

from repro.physical.device import get_device
from repro.physical.fabric import Fabric
from repro.physical.netdelay import (
    CONNECTION_NS,
    FANOUT_LOG_NS,
    NS_PER_TILE,
    sink_delay,
    worst_sink_delay,
)
from repro.physical.placement import Placement, Placer
from repro.physical.replication import ReplicationConfig, replicate_high_fanout
from repro.rtl.netlist import Cell, CellKind, Net, Netlist, NetKind


def two_cell_net(dist, fanout_pad=0):
    nl = Netlist("n")
    a = nl.new_cell("a", CellKind.FF, ffs=1, delay_ns=0.1)
    b = nl.new_cell("b", CellKind.FF, ffs=1, delay_ns=0.1)
    sinks = [(b, "d")]
    for i in range(fanout_pad):
        extra = nl.new_cell(f"x{i}", CellKind.FF, ffs=1, delay_ns=0.1)
        sinks.append((extra, "d"))
    net = nl.connect("w", a, sinks)
    placement = Placement()
    placement.put(a, 0, 0)
    placement.put(b, dist, 0)
    for i in range(fanout_pad):
        placement.put(nl.cells[f"x{i}"], 0, 1)
    return nl, net, placement, b


class TestNetDelayLaw:
    def test_base_connection_cost(self):
        _nl, net, placement, b = two_cell_net(0)
        assert sink_delay(placement, net, b) == pytest.approx(CONNECTION_NS)

    def test_distance_term_linear(self):
        _nl, net, placement, b = two_cell_net(10)
        expected = CONNECTION_NS + 10 * NS_PER_TILE
        assert sink_delay(placement, net, b) == pytest.approx(expected)

    def test_fanout_term_logarithmic(self):
        _nl, net, placement, b = two_cell_net(0, fanout_pad=7)  # fanout 8
        expected = CONNECTION_NS + FANOUT_LOG_NS * 3
        assert sink_delay(placement, net, b) == pytest.approx(expected)

    def test_worst_sink(self):
        _nl, net, placement, b = two_cell_net(10, fanout_pad=3)
        assert worst_sink_delay(placement, net) >= sink_delay(placement, net, b)

    def test_worst_sink_keeps_control_pin_penalty(self):
        """worst_sink_delay must pass the pin through, so a far control pin
        dominates a near data pin."""
        nl = Netlist("n")
        a = nl.new_cell("a", CellKind.FF, ffs=1, delay_ns=0.1)
        m = nl.new_cell("m", CellKind.CTRL, delay_ns=0.25)
        b = nl.new_cell("b", CellKind.FF, ffs=1, delay_ns=0.1)
        net = nl.connect("e", a, [(b, "d"), (m, "ce")], kind=NetKind.ENABLE)
        placement = Placement()
        placement.put(a, 0, 0)
        placement.put(b, 1, 0)
        placement.put(m, 1, 0, radius=20.0)
        assert worst_sink_delay(placement, net) == pytest.approx(
            sink_delay(placement, net, m, "ce")
        )
        assert worst_sink_delay(placement, net) > sink_delay(placement, net, m)

    def test_control_pin_pays_macro_radius(self):
        nl = Netlist("n")
        a = nl.new_cell("a", CellKind.FF, ffs=1, delay_ns=0.1)
        m = nl.new_cell("m", CellKind.CTRL, delay_ns=0.25)
        net = nl.connect("e", a, [(m, "ce")], kind=NetKind.ENABLE)
        placement = Placement()
        placement.put(a, 0, 0)
        placement.put(m, 5, 0, radius=20.0)
        assert sink_delay(placement, net, m, "ce") > sink_delay(placement, net, m, "i")


def broadcast_netlist(fanout=128, width=32):
    nl = Netlist("b")
    feeder = nl.new_cell("feeder", CellKind.FF, ffs=width, width=width, delay_ns=0.1)
    src = nl.new_cell("src", CellKind.FF, ffs=width, width=width, delay_ns=0.1)
    nl.connect("d", feeder, [(src, "d")], width=width)
    sinks = []
    for i in range(fanout):
        cell = nl.new_cell(f"s{i}", CellKind.LOGIC, luts=16, delay_ns=0.3)
        sinks.append((cell, "a"))
    nl.connect("bcast", src, sinks, kind=NetKind.DATA, width=width)
    return nl


class TestReplication:
    def test_splits_high_fanout_ff_net(self):
        nl = broadcast_netlist()
        fabric = Fabric(get_device("aws-f1"))
        placement = Placer(fabric).place(nl)
        created = replicate_high_fanout(nl, placement)
        assert created > 0
        assert max(net.fanout for net in nl.nets.values()) <= 64

    def test_reduces_worst_delay(self):
        nl1 = broadcast_netlist()
        fabric = Fabric(get_device("aws-f1"))
        p1 = Placer(fabric).place(nl1)
        before = worst_sink_delay(p1, nl1.nets["bcast"])
        replicate_high_fanout(nl1, p1)
        after = max(
            worst_sink_delay(p1, net)
            for net in nl1.nets.values()
            if net.name.startswith("bcast")
        )
        assert after < before

    def test_replicas_load_the_feeder(self):
        nl = broadcast_netlist()
        fabric = Fabric(get_device("aws-f1"))
        placement = Placer(fabric).place(nl)
        replicate_high_fanout(nl, placement)
        assert nl.nets["d"].fanout > 1  # feeder drives the replicas too

    def test_comb_driver_not_replicated(self):
        nl = Netlist("c")
        gate = nl.new_cell("gate", CellKind.LOGIC, luts=4, delay_ns=0.3)
        sinks = [
            (nl.new_cell(f"s{i}", CellKind.FF, ffs=1, delay_ns=0.1), "ce")
            for i in range(256)
        ]
        nl.connect("enable", gate, sinks, kind=NetKind.ENABLE)
        fabric = Fabric(get_device("aws-f1"))
        placement = Placer(fabric).place(nl)
        assert replicate_high_fanout(nl, placement) == 0
        assert nl.nets["enable"].fanout == 256

    def test_disabled_config(self):
        nl = broadcast_netlist()
        fabric = Fabric(get_device("aws-f1"))
        placement = Placer(fabric).place(nl)
        assert (
            replicate_high_fanout(nl, placement, ReplicationConfig(enabled=False)) == 0
        )

    def test_recursive_tree_for_huge_fanout(self):
        nl = broadcast_netlist(fanout=1024, width=1)
        fabric = Fabric(get_device("aws-f1"))
        placement = Placer(fabric).place(nl)
        replicate_high_fanout(nl, placement)
        # fixpoint: every remaining net within the per-net target
        assert all(net.fanout <= 64 for net in nl.nets.values())

    def test_narrow_nets_replicate_generously(self):
        """A 1-bit 256-fanout net resolves in a single pass (cheap FFs are
        split more aggressively); a wide one is capped and needs recursion."""
        wide = broadcast_netlist(fanout=256, width=64)
        narrow = broadcast_netlist(fanout=256, width=1)
        fabric = Fabric(get_device("aws-f1"))
        pw = Placer(fabric).place(wide)
        pn = Placer(fabric).place(narrow)
        replicate_high_fanout(wide, pw, max_passes=1)
        replicate_high_fanout(narrow, pn, max_passes=1)
        assert max(net.fanout for net in narrow.nets.values()) <= 32
        assert max(net.fanout for net in wide.nets.values()) > 32

    def test_replicas_are_placed(self):
        nl = broadcast_netlist()
        fabric = Fabric(get_device("aws-f1"))
        placement = Placer(fabric).place(nl)
        replicate_high_fanout(nl, placement)
        for cell in nl.cells.values():
            assert cell.name in placement.pos
