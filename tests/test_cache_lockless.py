"""Lockless fallback of the calibration cache on fcntl-less platforms."""

from __future__ import annotations

import warnings

import pytest

from repro.delay import cache


@pytest.fixture()
def _no_fcntl(monkeypatch):
    monkeypatch.setattr(cache, "fcntl", None)
    monkeypatch.setattr(cache, "_LOCKLESS_WARNED", False)


class TestLocklessFallback:
    def test_lock_degrades_to_noop_with_one_warning(self, tmp_path, _no_fcntl):
        path = str(tmp_path / "cal.json")
        with pytest.warns(RuntimeWarning, match="lockless"):
            with cache.calibration_lock(path):
                pass
        # No .lock file materializes in lockless mode.
        assert not (tmp_path / "cal.json.lock").exists()

    def test_warning_fires_once_per_process(self, tmp_path, _no_fcntl):
        path = str(tmp_path / "cal.json")
        with pytest.warns(RuntimeWarning):
            with cache.calibration_lock(path):
                pass
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with cache.calibration_lock(path):
                pass
            with cache.calibration_lock(path):
                pass
        assert caught == []

    def test_locked_path_untouched_when_fcntl_present(self, tmp_path):
        if cache.fcntl is None:  # pragma: no cover - non-POSIX host
            pytest.skip("platform has no fcntl")
        path = str(tmp_path / "cal.json")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with cache.calibration_lock(path):
                pass
        assert caught == []
        assert (tmp_path / "cal.json.lock").exists()
