"""Tests for schedule report emit/parse (repro.scheduling.report)."""

import pytest

from repro.delay.hls_model import HlsDelayModel
from repro.errors import ReportParseError
from repro.ir.builder import DFGBuilder
from repro.ir.program import Buffer, Fifo
from repro.ir.types import i32
from repro.scheduling.chaining import ChainingScheduler
from repro.scheduling.report import emit_report, parse_report, report_states
from repro.control.widths import width_profile_from_report


def make_scheduled(clock=2.0):
    b = DFGBuilder("rpt")
    x = b.input("x", i32)
    y = b.input("y", i32)
    v = b.add(x, y, name="v")
    for i in range(10):
        v = b.sub(v, y, name=f"v{i}")
    b.store(Buffer("m", i32, 128), x, v)
    dfg = b.build()
    sched = ChainingScheduler(HlsDelayModel(), clock).schedule(dfg)
    return dfg, sched


class TestEmit:
    def test_header_fields(self):
        dfg, sched = make_scheduled()
        text = emit_report(sched)
        assert f"Schedule Report: {dfg.name}" in text
        assert "model=hls" in text
        assert f"depth={sched.depth}" in text

    def test_states_in_order(self):
        _dfg, sched = make_scheduled()
        text = emit_report(sched)
        states = [int(l.split()[1][:-1]) for l in text.splitlines() if l.startswith("State")]
        assert states == sorted(states)

    def test_broadcast_factor_annotated(self):
        _dfg, sched = make_scheduled()
        assert "bf=" in emit_report(sched)

    def test_violations_section(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        b.shl(x, x)
        sched = ChainingScheduler(HlsDelayModel(), 0.6).schedule(b.build())
        assert "Violations:" in emit_report(sched)


class TestRoundTrip:
    def test_cycles_survive(self):
        dfg, sched = make_scheduled()
        back = parse_report(emit_report(sched), dfg)
        for name, entry in sched.entries.items():
            assert back.entries[name].cycle == entry.cycle
            assert back.entries[name].finish_cycle == entry.finish_cycle

    def test_times_survive(self):
        dfg, sched = make_scheduled()
        back = parse_report(emit_report(sched), dfg)
        for name, entry in sched.entries.items():
            assert back.entries[name].start_ns == pytest.approx(entry.start_ns, abs=1e-3)
            assert back.entries[name].end_ns == pytest.approx(entry.end_ns, abs=1e-3)

    def test_depth_preserved(self):
        dfg, sched = make_scheduled()
        back = parse_report(emit_report(sched), dfg)
        assert back.depth == sched.depth

    def test_width_profile_from_report_matches(self):
        dfg, sched = make_scheduled()
        profile = width_profile_from_report(emit_report(sched), dfg)
        assert profile == sched.width_profile()


class TestParseErrors:
    def test_bad_header(self):
        dfg, _ = make_scheduled()
        with pytest.raises(ReportParseError):
            parse_report("not a report\n", dfg)

    def test_unknown_op(self):
        dfg, sched = make_scheduled()
        text = emit_report(sched).replace("op_v0", "op_ghost")
        with pytest.raises(ReportParseError):
            parse_report(text, dfg)

    def test_missing_ops_detected(self):
        dfg, sched = make_scheduled()
        lines = [
            l for l in emit_report(sched).splitlines() if " | sub" not in l
        ]
        with pytest.raises(ReportParseError):
            parse_report("\n".join(lines), dfg)

    def test_empty_report(self):
        dfg, _ = make_scheduled()
        with pytest.raises(ReportParseError):
            parse_report("", dfg)


class TestReportStates:
    def test_light_view(self):
        dfg, sched = make_scheduled()
        states = report_states(emit_report(sched))
        for name, entry in sched.entries.items():
            assert states[name] == entry.cycle
