"""Tests for the HLS and calibrated delay models."""

import pytest
from hypothesis import given, strategies as st

from repro.delay.calibrated import (
    CalibratedDelayModel,
    CalibrationTable,
    broadcast_factor_of,
)
from repro.delay.hls_model import HlsDelayModel
from repro.delay.tables import (
    hls_predicted_delay,
    op_delay_key,
    op_resources,
    physical_cell_delay,
)
from repro.ir.builder import DFGBuilder
from repro.ir.ops import Opcode
from repro.ir.program import Buffer
from repro.ir.types import f32, i32, i64


class TestHlsTables:
    def test_add32_matches_paper_anchor(self):
        # §5.2: the HLS-predicted sub delay is 0.78 ns.
        assert hls_predicted_delay(Opcode.SUB, i32) == pytest.approx(0.78, abs=0.02)

    def test_wider_add_slower(self):
        assert hls_predicted_delay(Opcode.ADD, i64) > hls_predicted_delay(
            Opcode.ADD, i32
        )

    def test_float_mul_conservative(self):
        # Fig. 9 right: the HLS prediction sits well above the measurement.
        assert hls_predicted_delay(Opcode.MUL, f32) > physical_cell_delay(
            Opcode.MUL, f32
        ) + 0.5

    def test_int_physical_below_predicted(self):
        assert physical_cell_delay(Opcode.ADD, i32) < hls_predicted_delay(
            Opcode.ADD, i32
        )

    def test_casts_free(self):
        assert hls_predicted_delay(Opcode.ZEXT, i32) == 0.0

    def test_resources_reg(self):
        assert op_resources(Opcode.REG, i32) == (0, 32, 0)

    def test_resources_fmul_uses_dsp(self):
        _luts, _ffs, dsps = op_resources(Opcode.MUL, f32)
        assert dsps >= 3


class TestHlsModelBlindness:
    """The production model must ignore the operand environment (§2)."""

    def test_same_delay_any_fanout(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        first = b.add(x, x).producer
        for _ in range(63):
            b.add(x, x)
        model = HlsDelayModel()
        assert model.op_delay(first) == model.op_delay(b.dfg.ops[-1])

    def test_same_delay_any_buffer_size(self):
        model = HlsDelayModel()
        b = DFGBuilder()
        small = Buffer("s", i32, 16)
        huge = Buffer("h", i32, 1 << 20)
        a = b.input("a", i32)
        d = b.input("d", i32)
        st_small = b.store(small, a, d)
        st_huge = b.store(huge, a, d)
        assert model.op_delay(st_small) == model.op_delay(st_huge)


class TestCalibrationTable:
    def test_lookup_exact(self):
        t = CalibrationTable()
        t.add("add_i32", 4, 1.0)
        assert t.lookup("add_i32", 4) == 1.0

    def test_lookup_interpolates_log2(self):
        t = CalibrationTable()
        t.add("k", 4, 1.0)
        t.add("k", 16, 3.0)
        assert t.lookup("k", 8) == pytest.approx(2.0)

    def test_lookup_clamps_ends(self):
        t = CalibrationTable()
        t.add("k", 8, 2.0)
        t.add("k", 64, 4.0)
        assert t.lookup("k", 1) == 2.0
        assert t.lookup("k", 4096) == 4.0

    def test_lookup_unknown_key(self):
        assert CalibrationTable().lookup("nope", 4) is None

    def test_bad_factor_rejected(self):
        with pytest.raises(Exception):
            CalibrationTable().add("k", 0, 1.0)

    def test_smoothing_averages_neighbors(self):
        t = CalibrationTable()
        for factor, delay in [(1, 1.0), (2, 5.0), (4, 1.0)]:
            t.add("k", factor, delay)
        s = t.smoothed()
        assert s.lookup("k", 2) == pytest.approx((1 + 5 + 1) / 3)

    def test_smoothing_keeps_short_curves(self):
        t = CalibrationTable()
        t.add("k", 1, 1.0)
        t.add("k", 2, 2.0)
        s = t.smoothed()
        assert s.points("k") == t.points("k")

    def test_json_roundtrip(self):
        t = CalibrationTable()
        t.add("a", 1, 0.5)
        t.add("a", 8, 1.5)
        t.add("b", 2, 2.5)
        back = CalibrationTable.from_json(t.to_json())
        assert back.to_dict() == t.to_dict()

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=4096),
                st.floats(min_value=0.01, max_value=50, allow_nan=False),
            ),
            min_size=1,
            max_size=20,
            unique_by=lambda p: p[0],
        ),
        st.integers(min_value=1, max_value=8192),
    )
    def test_lookup_within_curve_bounds(self, points, factor):
        """Interpolation never leaves the [min, max] delay envelope."""
        t = CalibrationTable()
        for f, d in points:
            t.add("k", f, d)
        value = t.lookup("k", factor)
        delays = [d for _f, d in points]
        assert min(delays) - 1e-9 <= value <= max(delays) + 1e-9


class TestBroadcastFactor:
    def test_counts_widest_operand(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        y = b.input("y", i32)
        ops = [b.add(x, y).producer for _ in range(5)]
        assert broadcast_factor_of(ops[0]) == 5

    def test_constants_do_not_broadcast(self):
        b = DFGBuilder()
        c = b.const(1, i32)
        x = b.input("x", i32)
        op = b.add(x, c).producer
        for _ in range(7):
            b.add(x, c)
        assert broadcast_factor_of(op) == 8  # from x, not from c


class TestCalibratedModel:
    def test_max_rule(self, synthetic_table):
        model = CalibratedDelayModel(synthetic_table)
        b = DFGBuilder()
        x = b.input("x", i32)
        y = b.input("y", i32)
        solo = b.sub(x, y).producer
        # Low fanout: the (higher) HLS prediction wins.
        assert model.op_delay(solo) == pytest.approx(
            hls_predicted_delay(Opcode.SUB, i32), abs=0.02
        )

    def test_broadcast_raises_delay(self, synthetic_table):
        model = CalibratedDelayModel(synthetic_table)
        b = DFGBuilder()
        x = b.input("x", i32)
        y = b.input("y", i32)
        ops = [b.sub(x, y).producer for _ in range(64)]
        assert model.op_delay(ops[0]) > 1.8  # ~2.1 in the table

    def test_memory_keyed_on_bank_count(self, synthetic_table):
        model = CalibratedDelayModel(synthetic_table)
        b = DFGBuilder()
        a = b.input("a", i32)
        d = b.input("d", i32)
        small = b.store(Buffer("s", i32, 64), a, d)
        huge = b.store(Buffer("h", i32, 1 << 21), a, d)
        assert model.op_delay(huge) > model.op_delay(small)

    def test_bank_group_shrinks_factor(self, synthetic_table):
        model = CalibratedDelayModel(synthetic_table)
        b = DFGBuilder()
        a = b.input("a", i32)
        d = b.input("d", i32)
        buf = Buffer("p", i32, 1 << 20, partition=64)
        whole = b.store(buf, a, d)
        grouped = b.store(buf, a, d)
        grouped.attrs["bank_group"] = (0, 64)
        assert model.op_delay(grouped) < model.op_delay(whole)

    def test_unknown_key_falls_back_to_hls(self, synthetic_table):
        model = CalibratedDelayModel(synthetic_table)
        b = DFGBuilder()
        x = b.input("x", i32)
        y = b.input("y", i32)
        cmp_op = b.cmp("lt", x, y).producer
        assert model.op_delay(cmp_op) == HlsDelayModel().op_delay(cmp_op)

    def test_describe_mentions_factor(self, synthetic_table):
        model = CalibratedDelayModel(synthetic_table)
        b = DFGBuilder()
        x = b.input("x", i32)
        op = b.add(x, x).producer
        assert "bf" in model.describe(op)


class TestOpDelayKey:
    def test_arith_key(self):
        b = DFGBuilder()
        x = b.input("x", f32)
        assert op_delay_key(b.mul(x, x).producer) == "mul_f32"

    def test_mem_key(self):
        b = DFGBuilder()
        a = b.input("a", i32)
        d = b.input("d", i32)
        assert op_delay_key(b.store(Buffer("m", i32, 8), a, d)) == "store_bram"
