"""Tests for initiation-interval analysis (repro.scheduling.ii)."""

from repro.delay.calibrated import CalibratedDelayModel
from repro.delay.hls_model import HlsDelayModel
from repro.ir.builder import DFGBuilder
from repro.ir.passes import apply_pragmas
from repro.ir.program import Buffer, Fifo, Loop
from repro.ir.types import i32
from repro.scheduling.chaining import ChainingScheduler
from repro.scheduling.ii import IIReport, analyze_ii, check_ii_preserved

from conftest import make_synthetic_table


def scheduled(body_builder, clock=3.0, model=None, **loop_kw):
    b = DFGBuilder("body")
    body_builder(b)
    loop = Loop("l", b.build(), pipeline=True, **loop_kw)
    schedule = ChainingScheduler(model or HlsDelayModel(), clock).schedule(loop.body)
    return loop, schedule


class TestMemoryBound:
    def test_two_accesses_fit_dual_port(self):
        buf = Buffer("m", i32, 64)

        def body(b):
            a = b.input("a", i32)
            b.store(buf, a, b.load(buf, a))

        loop, schedule = scheduled(body)
        assert analyze_ii(loop, schedule).ii == 1

    def test_three_accesses_force_ii2(self):
        buf = Buffer("m", i32, 64)

        def body(b):
            a = b.input("a", i32)
            x = b.load(buf, a)
            y = b.load(buf, b.add(a, b.const(1, i32)))
            b.store(buf, a, b.add(x, y))

        loop, schedule = scheduled(body)
        report = analyze_ii(loop, schedule)
        assert report.ii == 2
        assert "memory ports" in report.limiting_resource

    def test_bank_groups_decouple(self):
        buf = Buffer("m", i32, 64, partition=4)

        def body(b):
            a = b.input("a", i32)
            for g in range(4):
                st = b.store(buf, a, b.const(g, i32))
                st.attrs["bank_group"] = (g, 4)

        loop, schedule = scheduled(body)
        assert analyze_ii(loop, schedule).ii == 1  # one store per group


class TestFifoBound:
    def test_two_reads_same_fifo(self):
        fifo = Fifo("f", i32)

        def body(b):
            b.add(b.fifo_read(fifo), b.fifo_read(fifo))

        loop, schedule = scheduled(body)
        report = analyze_ii(loop, schedule)
        assert report.ii == 2
        assert "fifo" in report.limiting_resource

    def test_read_and_write_independent(self):
        fifo = Fifo("f", i32)

        def body(b):
            b.fifo_write(fifo, b.fifo_read(fifo))

        loop, schedule = scheduled(body)
        assert analyze_ii(loop, schedule).ii == 1

    def test_requested_ii_floor(self):
        fifo = Fifo("f", i32)

        def body(b):
            b.fifo_write(fifo, b.fifo_read(fifo))

        loop, schedule = scheduled(body, ii=4)
        assert analyze_ii(loop, schedule).ii == 4


class TestThroughputNeutrality:
    """§5.2: the optimization must not change II."""

    def test_genome_ii_preserved(self, synthetic_table):
        from repro.designs import build_design

        design = apply_pragmas(build_design("genome", unroll=16))
        loop = next(l for _k, l in design.all_loops() if l.name == "back_search")
        clock = 1000.0 / float(design.meta["clock_mhz"])
        before = ChainingScheduler(HlsDelayModel(), clock).schedule(loop.body)
        cal = CalibratedDelayModel(synthetic_table)
        after = ChainingScheduler(cal, clock).schedule(loop.body)
        assert check_ii_preserved(loop, before, after)
        assert analyze_ii(loop, before).fully_pipelined

    def test_report_access_counts(self):
        fifo = Fifo("f", i32)

        def body(b):
            b.fifo_write(fifo, b.fifo_read(fifo))

        loop, schedule = scheduled(body)
        counts = analyze_ii(loop, schedule).access_counts
        assert counts == {"fifo:f:read": 1, "fifo:f:write": 1}
