"""Canonical hashing + request-digest stability (the service's identity layer).

The whole service contract — coalescing, store hits, retry idempotence —
rests on one property: the same logical request always hashes to the same
digest, in any process, under any ``PYTHONHASHSEED``, and *any* semantic
field change produces a different digest.  These tests pin that property.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

SRC_DIR = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.delay.cache import FORMAT_VERSION, CalibrationProvenance
from repro.hashing import canonical_json, content_digest
from repro.service.request import FlowRequest, config_from_spec, config_to_dict


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_no_whitespace_and_sorted(self):
        assert canonical_json({"b": [1, 2], "a": "x"}) == '{"a":"x","b":[1,2]}'

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError):
            canonical_json({1: "x"})

    def test_nested_non_string_keys_rejected(self):
        with pytest.raises(TypeError):
            canonical_json({"outer": [{2: "x"}]})

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_non_json_types_rejected(self):
        with pytest.raises(TypeError):
            canonical_json({"x": object()})

    def test_unicode_is_escaped_to_ascii(self):
        # ensure_ascii makes the byte encoding unambiguous across locales
        assert canonical_json({"k": "µ"}) == '{"k":"\\u00b5"}'

    def test_content_digest_is_sha256_hex(self):
        digest = content_digest({"a": 1})
        assert len(digest) == 64
        int(digest, 16)  # valid hex

    def test_content_digest_distinguishes_values(self):
        assert content_digest({"a": 1}) != content_digest({"a": 2})


class TestRequestDigest:
    def test_digest_stable_across_processes(self):
        """The acceptance property: two fresh interpreters with different
        hash seeds compute the identical digest for the same request."""
        script = (
            "from repro.service.request import FlowRequest;"
            "print(FlowRequest.make('matmul', config='full', seed=7).digest())"
        )
        digests = set()
        for hash_seed in ("0", "12345"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env={
                    "PYTHONPATH": SRC_DIR,
                    "PYTHONHASHSEED": hash_seed,
                    "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
                },
            )
            digests.add(proc.stdout.strip())
        assert len(digests) == 1
        assert digests == {FlowRequest.make("matmul", config="full", seed=7).digest()}

    def test_same_request_same_digest(self):
        a = FlowRequest.make("genome", config="full", seed=3)
        b = FlowRequest.make("genome", config="full", seed=3)
        assert a.digest() == b.digest()

    def test_config_object_and_label_agree(self):
        assert (
            FlowRequest.make("matmul", config="full").digest()
            == FlowRequest.make("matmul", config=config_from_spec("full")).digest()
        )

    @pytest.mark.parametrize(
        "mutation",
        [
            dict(design="genome"),
            dict(config="orig"),
            dict(clock_mhz=300.0),
            dict(seed=3),
            dict(smooth_passes=2),
            dict(calibration_path="/tmp/other.json"),
        ],
    )
    def test_any_field_change_changes_digest(self, mutation):
        base = dict(
            design="matmul", config="full", clock_mhz=250.0, seed=2020,
            smooth_passes=1, calibration_path=None,
        )
        changed = dict(base, **mutation)
        assert (
            FlowRequest.make(base.pop("design"), **base).digest()
            != FlowRequest.make(changed.pop("design"), **changed).digest()
        )

    def test_params_change_changes_digest(self):
        assert (
            FlowRequest.make("matmul").digest()
            != FlowRequest.make("matmul", unroll=4).digest()
        )

    def test_wire_roundtrip_preserves_digest(self):
        request = FlowRequest.make("matmul", config="skid", seed=5, unroll=2)
        wire = json.loads(json.dumps(request.to_dict()))  # full JSON trip
        assert FlowRequest.from_dict(wire).digest() == request.digest()

    def test_digest_covers_calibration_provenance_fields(self):
        """seed and smooth_passes feed both the request digest and the
        calibration provenance — a recalibration is never served a stale
        result."""
        base = FlowRequest.make("matmul")
        assert base.provenance_dict()["seed"] == base.seed
        assert base.provenance_dict()["version"] == FORMAT_VERSION
        assert (
            base.with_seed(base.seed + 1).provenance_dict()
            != base.provenance_dict()
        )


class TestProvenanceDigest:
    def test_provenance_digest_is_content_addressed(self):
        a = CalibrationProvenance(device="aws-f1", seed=2020, smooth_passes=1)
        b = CalibrationProvenance(device="aws-f1", seed=2020, smooth_passes=1)
        assert a.digest() == b.digest()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(device="other-device"),
            dict(seed=999),
            dict(smooth_passes=3),
        ],
    )
    def test_provenance_digest_sensitive_to_fields(self, kwargs):
        base = CalibrationProvenance(device="aws-f1", seed=2020, smooth_passes=1)
        other = CalibrationProvenance(
            **{**dict(device="aws-f1", seed=2020, smooth_passes=1), **kwargs}
        )
        assert base.digest() != other.digest()


class TestConfigSpec:
    def test_config_dict_roundtrip(self):
        config = config_from_spec("skid_minarea")
        assert config_from_spec(config_to_dict(config)) == config

    def test_unknown_label_rejected(self):
        with pytest.raises(Exception):
            config_from_spec("not-a-config")

    def test_to_json_from_json_roundtrip_all_labels(self):
        from repro.opt import CONFIG_LABELS, OptimizationConfig

        for label, config in CONFIG_LABELS.items():
            payload = json.loads(json.dumps(config.to_json()))
            assert OptimizationConfig.from_json(payload) == config, label

    def test_to_json_digest_stable_across_processes(self):
        """OptimizationConfig.to_json is part of the request identity: two
        fresh interpreters with different hash seeds must hash it alike."""
        from repro.opt import FULL

        script = (
            "from repro.hashing import content_digest;"
            "from repro.opt import FULL;"
            "print(content_digest(FULL.to_json()))"
        )
        digests = set()
        for hash_seed in ("0", "12345"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env={
                    "PYTHONPATH": SRC_DIR,
                    "PYTHONHASHSEED": hash_seed,
                    "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
                },
            )
            digests.add(proc.stdout.strip())
        assert digests == {content_digest(FULL.to_json())}


class TestPlanDigest:
    """Transform plans are part of the request identity."""

    PLAN = [["unroll", {"loop": "dp", "factor": 4}]]

    def test_plan_free_wire_form_unchanged(self):
        # Legacy stores index requests without a "plan" key; a plan-free
        # request must keep producing byte-identical wire forms.
        wire = FlowRequest.make("matmul", config="full").to_dict()
        assert "plan" not in wire

    def test_plan_changes_digest(self):
        assert (
            FlowRequest.make("matmul", config="full").digest()
            != FlowRequest.make("matmul", config="full", plan=self.PLAN).digest()
        )

    def test_planned_wire_roundtrip_preserves_digest(self):
        request = FlowRequest.make("matmul", config="full", plan=self.PLAN)
        wire = json.loads(json.dumps(request.to_dict()))
        assert wire["plan"] == self.PLAN
        assert FlowRequest.from_dict(wire).digest() == request.digest()

    def test_plan_digest_stable_across_processes(self):
        script = (
            "from repro.service.request import FlowRequest;"
            "plan = [['unroll', {'loop': 'dp', 'factor': 4}]];"
            "print(FlowRequest.make('matmul', config='full', plan=plan).digest())"
        )
        digests = set()
        for hash_seed in ("0", "12345"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env={
                    "PYTHONPATH": SRC_DIR,
                    "PYTHONHASHSEED": hash_seed,
                    "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
                },
            )
            digests.add(proc.stdout.strip())
        assert digests == {
            FlowRequest.make("matmul", config="full", plan=self.PLAN).digest()
        }

    def test_bad_plan_rejected(self):
        with pytest.raises(Exception):
            FlowRequest.make("matmul", plan=[["bogus", {}]])
