"""Memo spill: incremental warm state survives worker recycling.

The per-``Flow`` scheduling/RTL/placement memos write-through to
``$REPRO_CACHE_DIR/memos`` (:class:`repro.pipeline.incremental.MemoSpill`),
so a *fresh* process warms up from a previous owner's entries.  The
headline test models the service failure this exists for: a worker
compiles a request (spilling its memos), is SIGKILLed before it can
report, and the daemon's retry — a brand-new worker process — must
reproduce the digest *with* ``incremental.*_spill_hits`` from the dead
worker's on-disk entries.
"""

from __future__ import annotations

import asyncio
import os
import pickle
import signal
import time

import pytest

from repro.designs import build_design
from repro.flow import Flow
from repro.opt import BASELINE
from repro.pipeline.incremental import (
    MemoSpill,
    SPILL_SCHEMA,
    _LruMemo,
    memo_spill_enabled_default,
)
from repro.service.daemon import FlowService
from repro.service.request import FlowRequest
from repro.service.store import ResultStore
from repro.service.worker import execute_request, worker_entry

#: Env vars parameterizing the module-level worker entry (must survive
#: both ``fork`` and ``spawn`` start methods — see test_service_daemon).
GATE_ENV = "REPRO_TEST_SPILL_GATE"
MARKER_ENV = "REPRO_TEST_SPILL_MARKER"


def _compile_then_stall_entry(request_dict, store_root, conn):
    """First attempt (gate present): compile for real — which spills the
    memos to disk — touch the marker, then idle so the test can SIGKILL
    a worker that did the work but never delivered it.  Later attempts
    (gate gone) run the real worker."""
    gate = os.environ.get(GATE_ENV)
    if gate and os.path.exists(gate):
        clean = dict(request_dict)
        clean.pop("_telemetry", None)
        execute_request(FlowRequest.from_dict(clean))
        marker = os.environ.get(MARKER_ENV)
        if marker:
            with open(marker, "w") as handle:
                handle.write(str(os.getpid()))
        deadline = time.time() + 60
        while os.path.exists(gate) and time.time() < deadline:
            time.sleep(0.02)
        os._exit(9)  # never report, even if the gate vanishes
    worker_entry(request_dict, store_root, conn)


class TestMemoSpillUnit:
    def test_save_load_roundtrip(self, tmp_path):
        spill = MemoSpill(root=str(tmp_path / "memos"))
        key = ("loop-digest", 3.5, True)
        spill.save("sched", key, {"decisions": [1, 2, 3]})
        assert spill.load("sched", key) == {"decisions": [1, 2, 3]}
        # A different memo namespace does not alias the same key.
        assert spill.load("rtl", key) is None
        assert spill.saves == 1 and spill.loads == 1

    def test_non_jsonable_key_stays_memory_only(self, tmp_path):
        spill = MemoSpill(root=str(tmp_path / "memos"))
        key = (object(),)  # canonical JSON cannot digest this
        spill.save("sched", key, "value")
        assert not os.path.exists(spill.root) or not os.listdir(spill.root)
        assert spill.load("sched", key) is None

    def test_unpicklable_value_is_skipped(self, tmp_path):
        spill = MemoSpill(root=str(tmp_path / "memos"))
        spill.save("sched", ("k",), lambda: None)  # not picklable
        assert spill.errors == 1
        assert spill.load("sched", ("k",)) is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        spill = MemoSpill(root=str(tmp_path / "memos"))
        spill.save("sched", ("k",), "good")
        (path,) = (
            os.path.join(spill.root, name) for name in os.listdir(spill.root)
        )
        with open(path, "wb") as handle:
            handle.write(b"\x80garbage")
        assert spill.load("sched", ("k",)) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        spill = MemoSpill(root=str(tmp_path / "memos"))
        spill.save("sched", ("k",), "good")
        (path,) = (
            os.path.join(spill.root, name) for name in os.listdir(spill.root)
        )
        with open(path, "wb") as handle:
            pickle.dump({"schema": "other/9", "memo": "sched", "value": "x"}, handle)
        assert spill.load("sched", ("k",)) is None
        assert SPILL_SCHEMA == "repro-memo-spill/1"

    def test_prune_evicts_oldest_beyond_bound(self, tmp_path):
        spill = MemoSpill(root=str(tmp_path / "memos"), max_entries=3)
        for index in range(5):
            spill.save("sched", (f"key-{index}",), index)
            path = spill._path("sched", spill._key_digest("sched", (f"key-{index}",)))
            os.utime(path, (index, index))  # deterministic mtime order
        assert spill.prune() == 2
        survivors = {
            index for index in range(5)
            if spill.load("sched", (f"key-{index}",)) is not None
        }
        assert survivors == {2, 3, 4}

    def test_load_refreshes_lru_clock(self, tmp_path):
        spill = MemoSpill(root=str(tmp_path / "memos"), max_entries=1)
        spill.save("sched", ("old",), 1)
        old_path = spill._path("sched", spill._key_digest("sched", ("old",)))
        os.utime(old_path, (1, 1))
        assert spill.load("sched", ("old",)) == 1  # refreshes mtime to now
        spill.save("sched", ("new",), 2)
        new_path = spill._path("sched", spill._key_digest("sched", ("new",)))
        os.utime(new_path, (2, 2))  # now the oldest
        spill.prune()
        assert spill.load("sched", ("old",)) == 1
        assert spill.load("sched", ("new",)) is None

    def test_memo_consults_spill_on_memory_miss(self, tmp_path):
        spill = MemoSpill(root=str(tmp_path / "memos"))
        producer = _LruMemo("sched", 16, spill=spill)
        producer.put(("k",), "v")
        successor = _LruMemo("sched", 16, spill=spill)  # fresh memory
        assert successor.get(("k",)) == "v"
        assert successor.spill_hits == 1 and successor.hits == 1
        assert successor.get(("k",)) == "v"  # second get: memory, not disk
        assert successor.spill_hits == 1 and successor.hits == 2

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.delenv("REPRO_MEMO_SPILL", raising=False)
        assert memo_spill_enabled_default()
        monkeypatch.setenv("REPRO_MEMO_SPILL", "off")
        assert not memo_spill_enabled_default()


class TestFlowWarmsFromSpill:
    def test_fresh_flow_replays_spilled_memos(self, tmp_path, monkeypatch):
        """A second ``Flow`` instance (fresh memory) must hit the first
        instance's spilled entries and reproduce its fingerprint."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_STAGE_CACHE", "off")
        reference = Flow(seed=2020).run(build_design("vector_arith"), BASELINE)
        successor = Flow(seed=2020)
        warm = successor.run(build_design("vector_arith"), BASELINE)
        assert warm.fingerprint() == reference.fingerprint()
        stats = successor._incremental_state().stats()
        assert stats["sched"]["spill_hits"] > 0
        assert stats["rtl"]["spill_hits"] > 0
        assert stats["place"]["spill_hits"] > 0
        assert stats["sched"]["misses"] == 0

    def test_spill_off_keeps_memos_memory_only(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_MEMO_SPILL", "off")
        flow = Flow(seed=2020)
        flow.run(build_design("vector_arith"), BASELINE)
        assert flow._incremental_state().spill is None
        assert not os.path.exists(str(tmp_path / "cache" / "memos"))


class TestWorkerRecycling:
    def test_sigkilled_worker_spill_warms_successor(self, tmp_path, monkeypatch):
        """The satellite's acceptance test: SIGKILL a worker after it
        compiled (and spilled) but before it reported; the daemon's
        retry on a brand-new worker process must report
        ``incremental.*_spill_hits > 0`` and the reference digest."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_STAGE_CACHE", "off")  # no checkpoint
        # resume: the successor re-runs every stage, so any incremental
        # hit it reports can only come from the dead worker's spill.
        gate = tmp_path / "gate"
        gate.write_text("hold\n")
        marker = tmp_path / "compiled-marker"
        monkeypatch.setenv(GATE_ENV, str(gate))
        monkeypatch.setenv(MARKER_ENV, str(marker))
        request = FlowRequest.make("vector_arith", config="orig")
        monkeypatch.setenv("REPRO_MEMO_SPILL", "off")
        reference_digest = execute_request(request).result_digest()
        monkeypatch.delenv("REPRO_MEMO_SPILL")

        async def scenario():
            service = FlowService(
                store=ResultStore(str(tmp_path / "results")),
                quarantine_dir=str(tmp_path / "quarantine"),
                workers=1,
                max_attempts=3,
                backoff_s=0.01,
                backoff_cap_s=0.05,
                entry=_compile_then_stall_entry,
            )
            await service.start()
            try:
                job, how = service.submit(request)
                assert how == "queued"
                deadline = time.time() + 120
                while not marker.exists() and time.time() < deadline:
                    await asyncio.sleep(0.02)
                assert marker.exists(), "first worker never finished compiling"
                memo_dir = tmp_path / "cache" / "memos"
                assert memo_dir.is_dir() and list(memo_dir.iterdir()), (
                    "the doomed worker should have spilled its memos"
                )
                os.kill(job.worker_pid, signal.SIGKILL)
                gate.unlink()  # successor attempts run the real worker
                await service.wait(job, timeout=180)
                assert job.state == "done"
                assert job.attempts == 2
                assert job.result_digest == reference_digest
                assert service.counter("service.crashes") == 1
                # The successor's counters are the only ones grafted (the
                # corpse never delivered its tracer):
                assert service.counter("incremental.sched_spill_hits") > 0
                assert service.counter("incremental.sched_hits") > 0
                assert service.counter("incremental.rtl_spill_hits") > 0
                assert service.counter("incremental.place_spill_hits") > 0
            finally:
                await service.stop()

        asyncio.run(scenario())
