"""Tests for calibration persistence and Gantt rendering."""

import pytest

from repro.delay.cache import (
    get_or_build_calibration,
    load_calibration,
    save_calibration,
)
from repro.delay.calibrated import CalibrationTable
from repro.delay.hls_model import HlsDelayModel
from repro.errors import ReproError
from repro.ir.builder import DFGBuilder
from repro.ir.types import i32
from repro.scheduling.chaining import ChainingScheduler
from repro.scheduling.gantt import render_gantt


class TestCalibrationCache:
    def table(self):
        t = CalibrationTable()
        t.add("add_i32", 1, 0.78)
        t.add("add_i32", 64, 2.1)
        return t

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "cal.json"
        save_calibration(self.table(), str(path), device="aws-f1")
        back = load_calibration(str(path))
        assert back.to_dict() == self.table().to_dict()

    def test_device_check(self, tmp_path):
        path = tmp_path / "cal.json"
        save_calibration(self.table(), str(path), device="aws-f1")
        load_calibration(str(path), device="aws-f1")
        with pytest.raises(ReproError):
            load_calibration(str(path), device="zc706")

    def test_version_check(self, tmp_path):
        path = tmp_path / "cal.json"
        path.write_text('{"version": 99, "curves": {}}')
        with pytest.raises(ReproError):
            load_calibration(str(path))

    def test_get_or_build_loads_existing(self, tmp_path):
        path = tmp_path / "cal.json"
        save_calibration(self.table(), str(path), device="aws-f1")
        table = get_or_build_calibration(str(path), device="aws-f1")
        assert table.lookup("add_i32", 64) == pytest.approx(2.1)


class TestGantt:
    def scheduled(self):
        b = DFGBuilder("g")
        x = b.input("x", i32)
        v = b.add(x, x, name="first")
        for i in range(8):
            v = b.sub(v, x, name=f"s{i}")
        return ChainingScheduler(HlsDelayModel(), 2.0).schedule(b.build())

    def test_renders_all_cycles(self):
        schedule = self.scheduled()
        text = render_gantt(schedule)
        for c in range(schedule.depth):
            assert f"c{c}" in text

    def test_bars_present(self):
        assert "#" in render_gantt(self.scheduled())

    def test_row_truncation(self):
        text = render_gantt(self.scheduled(), max_ops=3)
        assert "more ops not shown" in text

    def test_cycle_limit(self):
        text = render_gantt(self.scheduled(), only_cycles=1)
        assert "c1" not in text.splitlines()[0]

    def test_footer_stats(self):
        text = render_gantt(self.scheduled())
        assert "depth=" in text and "model=hls" in text
