"""Tests for calibration persistence and Gantt rendering."""

import json
import os

import pytest

import repro.delay.cache as cache_mod
from repro.delay.cache import (
    CalibrationProvenance,
    calibration_lock,
    default_cache_dir,
    default_calibration_path,
    get_or_build_calibration,
    load_calibration,
    read_provenance,
    resolve_calibration,
    save_calibration,
)
from repro.delay.calibrated import CalibrationTable
from repro.delay.hls_model import HlsDelayModel
from repro.errors import ReproError
from repro.ir.builder import DFGBuilder
from repro.ir.types import i32
from repro.scheduling.chaining import ChainingScheduler
from repro.scheduling.gantt import render_gantt


class TestCalibrationCache:
    def table(self):
        t = CalibrationTable()
        t.add("add_i32", 1, 0.78)
        t.add("add_i32", 64, 2.1)
        return t

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "cal.json"
        save_calibration(self.table(), str(path), device="aws-f1")
        back = load_calibration(str(path))
        assert back.to_dict() == self.table().to_dict()

    def test_device_check(self, tmp_path):
        path = tmp_path / "cal.json"
        save_calibration(self.table(), str(path), device="aws-f1")
        load_calibration(str(path), device="aws-f1")
        with pytest.raises(ReproError):
            load_calibration(str(path), device="zc706")

    def test_version_check(self, tmp_path):
        path = tmp_path / "cal.json"
        path.write_text('{"version": 99, "curves": {}}')
        with pytest.raises(ReproError):
            load_calibration(str(path))

    def test_get_or_build_loads_existing(self, tmp_path):
        path = tmp_path / "cal.json"
        save_calibration(self.table(), str(path), device="aws-f1")
        table = get_or_build_calibration(str(path), device="aws-f1")
        assert table.lookup("add_i32", 64) == pytest.approx(2.1)

    def test_seed_mismatch_rejected(self, tmp_path):
        path = tmp_path / "cal.json"
        save_calibration(self.table(), str(path), device="aws-f1", seed=2020)
        load_calibration(str(path), seed=2020)
        with pytest.raises(ReproError, match="seed"):
            load_calibration(str(path), seed=7)

    def test_smooth_passes_mismatch_rejected(self, tmp_path):
        path = tmp_path / "cal.json"
        save_calibration(self.table(), str(path), device="aws-f1", smooth_passes=1)
        with pytest.raises(ReproError, match="smooth_passes"):
            load_calibration(str(path), smooth_passes=3)

    def test_missing_provenance_rejected(self, tmp_path):
        path = tmp_path / "cal.json"
        path.write_text('{"version": 1, "curves": {}}')
        with pytest.raises(ReproError, match="provenance"):
            load_calibration(str(path))

    def test_read_provenance(self, tmp_path):
        path = tmp_path / "cal.json"
        save_calibration(
            self.table(), str(path), device="zc706", seed=11, smooth_passes=2
        )
        assert read_provenance(str(path)) == CalibrationProvenance(
            device="zc706", seed=11, smooth_passes=2
        )

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = tmp_path / "cal.json"
        save_calibration(self.table(), str(path), device="aws-f1")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["cal.json"]
        assert json.loads(path.read_text())["device"] == "aws-f1"


class TestResolveCalibration:
    """resolve_calibration: memory -> disk -> build, with provenance."""

    @pytest.fixture(autouse=True)
    def _tiny_build(self, monkeypatch, tmp_path):
        """Stub the 14s characterization with a tiny deterministic table,
        and give every test a private cache dir + memo."""

        def fake_build(device, seed=2020, smooth_passes=1):
            table = CalibrationTable()
            table.add("add_i32", 1, 0.5 + seed * 1e-6)
            return table

        monkeypatch.setattr(cache_mod, "build_default_calibration", fake_build)
        monkeypatch.setattr(cache_mod, "_MEMORY", {})
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def test_build_then_disk_then_memory(self):
        table1, source1 = resolve_calibration("aws-f1")
        assert source1 == "built"
        _table2, source2 = resolve_calibration("aws-f1")
        assert source2 == "memory"
        cache_mod._MEMORY.clear()  # new process, warm disk
        table3, source3 = resolve_calibration("aws-f1")
        assert source3 == "disk"
        assert table3.to_dict() == table1.to_dict()

    def test_auto_path_encodes_provenance(self):
        resolve_calibration("aws-f1", seed=7, smooth_passes=2)
        path = default_calibration_path("aws-f1", seed=7, smooth_passes=2)
        assert os.path.exists(path)
        assert read_provenance(path) == CalibrationProvenance(
            device="aws-f1", seed=7, smooth_passes=2
        )

    def test_distinct_seeds_get_distinct_files(self):
        resolve_calibration("aws-f1", seed=1)
        resolve_calibration("aws-f1", seed=2)
        assert default_calibration_path("aws-f1", seed=1) != \
            default_calibration_path("aws-f1", seed=2)
        assert os.path.exists(default_calibration_path("aws-f1", seed=1))
        assert os.path.exists(default_calibration_path("aws-f1", seed=2))

    def test_explicit_path_builds_and_reuses(self, tmp_path):
        path = str(tmp_path / "explicit.json")
        _table, source = resolve_calibration("aws-f1", path=path)
        assert source == "built" and os.path.exists(path)
        cache_mod._MEMORY.clear()
        _table, source = resolve_calibration("aws-f1", path=path)
        assert source == "disk"

    def test_explicit_path_provenance_mismatch_raises(self, tmp_path):
        path = str(tmp_path / "explicit.json")
        resolve_calibration("aws-f1", seed=1, path=path)
        cache_mod._MEMORY.clear()
        with pytest.raises(ReproError, match="seed"):
            resolve_calibration("aws-f1", seed=2, path=path)

    def test_cache_disabled_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CALIBRATION_CACHE", "off")
        _table, source = resolve_calibration("aws-f1")
        assert source == "built"
        assert not os.path.exists(default_calibration_path("aws-f1"))

    def test_cache_dir_env_override(self):
        assert default_cache_dir() == os.environ["REPRO_CACHE_DIR"]

    def test_lock_is_exclusive_and_reentrant_across_processes(self, tmp_path):
        """The lock must actually serialize two processes racing to build."""
        import multiprocessing

        path = str(tmp_path / "locked.json")
        ctx = multiprocessing.get_context("fork")
        started = ctx.Event()
        release = ctx.Event()

        def hold_lock():
            with calibration_lock(path):
                started.set()
                release.wait(timeout=30)

        holder = ctx.Process(target=hold_lock)
        holder.start()
        assert started.wait(timeout=10)
        acquired = []

        def try_lock():
            with calibration_lock(path):
                acquired.append(True)

        import threading

        contender = threading.Thread(target=try_lock)
        contender.start()
        contender.join(timeout=0.5)
        assert contender.is_alive() and not acquired  # blocked by holder
        release.set()
        contender.join(timeout=10)
        assert acquired == [True]
        holder.join(timeout=10)


class TestGantt:
    def scheduled(self):
        b = DFGBuilder("g")
        x = b.input("x", i32)
        v = b.add(x, x, name="first")
        for i in range(8):
            v = b.sub(v, x, name=f"s{i}")
        return ChainingScheduler(HlsDelayModel(), 2.0).schedule(b.build())

    def test_renders_all_cycles(self):
        schedule = self.scheduled()
        text = render_gantt(schedule)
        for c in range(schedule.depth):
            assert f"c{c}" in text

    def test_bars_present(self):
        assert "#" in render_gantt(self.scheduled())

    def test_row_truncation(self):
        text = render_gantt(self.scheduled(), max_ops=3)
        assert "more ops not shown" in text

    def test_cycle_limit(self):
        text = render_gantt(self.scheduled(), only_cycles=1)
        assert "c1" not in text.splitlines()[0]

    def test_footer_stats(self):
        text = render_gantt(self.scheduled())
        assert "depth=" in text and "model=hls" in text
