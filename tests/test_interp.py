"""Tests for the IR interpreter and semantics preservation of passes."""

import collections

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.ir.broadcast_tree import build_broadcast_tree
from repro.ir.builder import DFGBuilder
from repro.ir.interp import Evaluator
from repro.ir.passes import cse, dce, unroll_loop
from repro.ir.program import Buffer, Fifo, Loop
from repro.ir.types import DataType, f32, i8, i32


class TestArithmetic:
    def evaluate(self, build, **inputs):
        b = DFGBuilder()
        args = {name: b.input(name, i32) for name in inputs}
        result = build(b, args)
        env = Evaluator().run(b.build(), inputs=inputs)
        return env[result.name]

    def test_add(self):
        assert self.evaluate(lambda b, a: b.add(a["x"], a["y"]), x=3, y=4) == 7

    def test_sub_negative(self):
        assert self.evaluate(lambda b, a: b.sub(a["x"], a["y"]), x=3, y=5) == -2

    def test_mul_wraps_to_width(self):
        b = DFGBuilder()
        x = b.input("x", i8)
        r = b.mul(x, x)
        env = Evaluator().run(b.build(), inputs={"x": 100})
        assert env[r.name] == ((100 * 100 + 128) % 256) - 128  # i8 wrap

    def test_signed_wrap(self):
        b = DFGBuilder()
        x = b.input("x", i8)
        r = b.add(x, b.const(1, i8))
        env = Evaluator().run(b.build(), inputs={"x": 127})
        assert env[r.name] == -128

    def test_div_by_zero_raises(self):
        with pytest.raises(SimulationError):
            self.evaluate(lambda b, a: b.div(a["x"], a["y"]), x=4, y=0)

    def test_div_truncates_toward_zero(self):
        assert self.evaluate(lambda b, a: b.div(a["x"], a["y"]), x=-7, y=2) == -3

    def test_select_and_cmp(self):
        assert (
            self.evaluate(
                lambda b, a: b.select(b.cmp("lt", a["x"], a["y"]), a["x"], a["y"]),
                x=9,
                y=5,
            )
            == 5
        )

    def test_min_max_idioms(self):
        assert self.evaluate(lambda b, a: b.min_(a["x"], a["y"]), x=2, y=8) == 2
        assert self.evaluate(lambda b, a: b.max_(a["x"], a["y"]), x=2, y=8) == 8

    def test_abs_diff(self):
        assert self.evaluate(lambda b, a: b.abs_diff(a["x"], a["y"]), x=3, y=10) == 7

    def test_shift_and_logic(self):
        assert self.evaluate(lambda b, a: b.shl(a["x"], b.const(2, i32)), x=3) == 12
        assert self.evaluate(lambda b, a: b.and_(a["x"], b.const(6, i32)), x=5) == 4

    def test_slice_extracts_field(self):
        wide = DataType("uint", 64)
        b = DFGBuilder()
        x = b.input("x", wide)
        u8 = DataType("uint", 8)
        lane = b.slice_(x, 8, u8)
        env = Evaluator().run(b.build(), inputs={"x": 0xAB12})
        assert env[lane.name] == 0xAB  # bits [15:8] of 0xAB12

    def test_float_ops(self):
        b = DFGBuilder()
        x = b.input("x", f32)
        r = b.mul(b.add(x, b.const(1.5, f32)), b.const(2.0, f32))
        env = Evaluator().run(b.build(), inputs={"x": 0.5})
        assert env[r.name] == pytest.approx(4.0)


class TestMemoryAndStreams:
    def test_store_then_load(self):
        buf = Buffer("m", i32, 16)
        b = DFGBuilder()
        addr = b.input("a", i32)
        b.store(buf, addr, b.const(42, i32))
        out = b.load(buf, addr)
        ev = Evaluator()
        env = ev.run(b.build(), inputs={"a": 3})
        assert env[out.name] == 42
        assert ev.buffers["m"][3] == 42

    def test_fifo_read_write(self):
        fin = Fifo("fin", i32)
        fout = Fifo("fout", i32)
        b = DFGBuilder()
        x = b.fifo_read(fin)
        b.fifo_write(fout, b.add(x, b.const(1, i32)))
        ev = Evaluator(fifos={"fin": collections.deque([10])})
        ev.run(b.build())
        assert list(ev.fifos["fout"]) == [11]

    def test_empty_fifo_read_raises(self):
        fin = Fifo("fin", i32)
        b = DFGBuilder()
        b.fifo_read(fin)
        with pytest.raises(SimulationError):
            Evaluator().run(b.build())

    def test_call_impl_plugged(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        r = b.call("double", [x], i32, latency=3).result
        ev = Evaluator(call_impls={"double": lambda v: v * 2})
        env = ev.run(b.build(), inputs={"x": 21})
        assert env[r.name] == 42

    def test_can_fire_checks_reads(self):
        fin = Fifo("fin", i32)
        b = DFGBuilder()
        b.fifo_read(fin)
        dfg = b.build()
        ev = Evaluator(fifos={"fin": collections.deque()})
        assert not ev.can_fire(dfg)
        ev.fifos["fin"].append(1)
        assert ev.can_fire(dfg)

    def test_can_fire_checks_write_space(self):
        fout = Fifo("fout", i32, depth=1)
        b = DFGBuilder()
        b.fifo_write(fout, b.const(1, i32))
        dfg = b.build()
        ev = Evaluator(fifos={"fout": collections.deque([0])})
        assert not ev.can_fire(dfg)

    def test_can_fire_counts_multiple_reads_of_one_fifo(self):
        fin = Fifo("fin", i32)
        b = DFGBuilder()
        b.add(b.fifo_read(fin), b.fifo_read(fin))
        dfg = b.build()
        ev = Evaluator(fifos={"fin": collections.deque([1])})
        assert not ev.can_fire(dfg)  # one element, two reads per firing
        ev.fifos["fin"].append(2)
        assert ev.can_fire(dfg)

    def test_can_fire_counts_multiple_writes_against_capacity(self):
        fout = Fifo("fout", i32, depth=2)
        b = DFGBuilder()
        b.fifo_write(fout, b.const(1, i32))
        b.fifo_write(fout, b.const(2, i32))
        dfg = b.build()
        ev = Evaluator(fifos={"fout": collections.deque([0])})
        assert not ev.can_fire(dfg)  # 1 queued + 2 writes > depth 2
        ev.fifos["fout"].clear()
        assert ev.can_fire(dfg)

    def test_can_fire_ignores_external_fifo_capacity(self):
        fout = Fifo("fout", i32, depth=1, external=True)
        b = DFGBuilder()
        b.fifo_write(fout, b.const(1, i32))
        dfg = b.build()
        ev = Evaluator(fifos={"fout": collections.deque([0])})
        assert ev.can_fire(dfg)  # external sinks are drained by the testbench


class TestWideShifts:
    """Shift amounts are clamped to the type width: the result is already
    fully determined (0 or the sign fill), and un-clamped amounts from
    fuzzed data would materialize multi-gigabit Python ints."""

    def evaluate(self, op, x, amount):
        b = DFGBuilder()
        v = b.input("x", i32)
        w = b.input("w", i32)
        r = getattr(b, op)(v, w)
        env = Evaluator().run(b.build(), inputs={"x": x, "w": amount})
        return env[r.name]

    def test_shl_huge_amount_is_zero(self):
        assert self.evaluate("shl", 7, 1 << 30) == 0

    def test_shr_huge_amount_saturates(self):
        assert self.evaluate("shr", 123456, 1 << 30) == 0
        assert self.evaluate("shr", -1, 1 << 30) == -1  # arithmetic fill

    def test_negative_amount_clamped_to_zero(self):
        assert self.evaluate("shl", 9, -5) == 9
        assert self.evaluate("shr", 9, -5) == 9

    def test_in_range_shifts_unchanged(self):
        assert self.evaluate("shl", 3, 4) == 48
        assert self.evaluate("shr", 48, 4) == 3


class TestPassSemantics:
    """Transformations must not change what a body computes."""

    def chain_body(self):
        b = DFGBuilder("body")
        shared = b.input("shared", i32, loop_invariant=True)
        local = b.input("local", i32)
        d = b.sub(local, shared)
        r = b.select(b.cmp("gt", d, b.const(0, i32)), d, b.const(0, i32), name="relu")
        return b.build(), r

    def test_unroll_preserves_per_copy_semantics(self):
        dfg, r = self.chain_body()
        loop = Loop("l", dfg, trip_count=4, unroll=4)
        unrolled = unroll_loop(loop)
        ref = Evaluator().run(dfg, inputs={"shared": 5, "local": 9})[r.name]
        env = Evaluator().run(
            unrolled.body,
            inputs={"shared": 5, **{f"local#{k}": 9 for k in range(4)}},
        )
        for k in range(4):
            assert env[f"{r.name}#{k}"] == ref

    def test_broadcast_tree_preserves_values(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        outs = [b.add(x, b.const(k, i32), name=f"o{k}") for k in range(9)]
        dfg = b.build()
        before = Evaluator().run(dfg, inputs={"x": 7})
        build_broadcast_tree(dfg, x, arity=3)
        after = Evaluator().run(dfg, inputs={"x": 7})
        for k in range(9):
            assert after[f"o{k}"] == before[f"o{k}"]

    def test_cse_preserves_values(self):
        b = DFGBuilder()
        x, y = b.input("x", i32), b.input("y", i32)
        r = b.add(b.mul(x, y), b.mul(x, y), name="twice")
        dfg = b.build()
        before = Evaluator().run(dfg, inputs={"x": 3, "y": 4})["twice"]
        cse(dfg)
        after = Evaluator().run(dfg, inputs={"x": 3, "y": 4})["twice"]
        assert before == after == 24

    def test_dce_preserves_live_values(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        live = b.add(x, b.const(1, i32), name="live")
        b.mul(x, x)  # dead
        dfg = b.build()
        removed = dce(dfg, keep={"live"})
        assert removed >= 1  # the dead multiply went away
        assert Evaluator().run(dfg, inputs={"x": 4})["live"] == 5

    @settings(max_examples=60, deadline=None)
    @given(
        shared=st.integers(-1000, 1000),
        locals_=st.lists(st.integers(-1000, 1000), min_size=2, max_size=8),
    )
    def test_unroll_equivalence_property(self, shared, locals_):
        dfg, r = self.chain_body()
        factor = len(locals_)
        loop = Loop("l", dfg, trip_count=factor, unroll=factor)
        unrolled = unroll_loop(loop)
        env = Evaluator().run(
            unrolled.body,
            inputs={
                "shared": shared,
                **{f"local#{k}": v for k, v in enumerate(locals_)},
            },
        )
        for k, v in enumerate(locals_):
            ref = Evaluator().run(dfg, inputs={"shared": shared, "local": v})[r.name]
            assert env[f"{r.name}#{k}"] == ref
