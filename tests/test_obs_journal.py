"""Structured event journal: rotation, corruption tolerance, replay.

The journal is the service's only log, written concurrently by the daemon
and forked workers; these tests pin the properties that make that safe —
single-write appends, bounded rotation, and readers that survive torn
lines left by a SIGKILL'd writer.
"""

from __future__ import annotations

import json
import threading

from repro.obs.journal import (
    EVENT_SCHEMA,
    EventJournal,
    activate_journal,
    current_journal,
    emit_event,
    follow_events,
    read_events,
)


class TestEmit:
    def test_records_carry_schema_ts_pid_source(self, tmp_path):
        journal = EventJournal(tmp_path / "events.jsonl", source="daemon")
        record = journal.emit("job.accepted", job_id="job-0001", lane="high")
        assert record["schema"] == EVENT_SCHEMA
        assert record["event"] == "job.accepted"
        assert record["source"] == "daemon"
        assert record["job_id"] == "job-0001"
        assert record["ts"] > 0 and record["pid"] > 0
        (read,) = read_events(journal.path)
        assert read == json.loads(json.dumps(record))

    def test_none_fields_are_dropped(self, tmp_path):
        journal = EventJournal(tmp_path / "events.jsonl")
        record = journal.emit("job.started", error=None, attempt=1)
        assert "error" not in record
        assert record["attempt"] == 1

    def test_one_line_per_record(self, tmp_path):
        journal = EventJournal(tmp_path / "events.jsonl")
        for i in range(10):
            journal.emit("tick", n=i)
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 10
        assert all(json.loads(line)["schema"] == EVENT_SCHEMA for line in lines)


class TestRotation:
    def test_rotates_at_max_bytes_and_keeps_generations(self, tmp_path):
        journal = EventJournal(tmp_path / "events.jsonl", max_bytes=400, keep=2)
        for i in range(40):
            journal.emit("tick", n=i, pad="x" * 40)
        generations = journal.generations()
        assert 2 <= len(generations) <= 3  # base + up to `keep` rotated
        assert generations[-1] == journal.path
        # Oldest generations beyond `keep` were unlinked, not accumulated.
        assert not (tmp_path / "events.jsonl.3").exists()

    def test_replay_reads_rotated_generations_oldest_first(self, tmp_path):
        journal = EventJournal(tmp_path / "events.jsonl", max_bytes=400, keep=3)
        for i in range(30):
            journal.emit("tick", n=i, pad="y" * 40)
        records = read_events(journal.path)
        ns = [r["n"] for r in records]
        assert ns == sorted(ns)  # chronological across rotation boundaries
        assert ns[-1] == 29

    def test_rotation_bounds_disk_usage(self, tmp_path):
        journal = EventJournal(tmp_path / "events.jsonl", max_bytes=500, keep=2)
        for i in range(300):
            journal.emit("tick", n=i, pad="z" * 60)
        total = sum(p.stat().st_size for p in journal.generations())
        assert total <= 500 * 4  # base + keep generations, each bounded


class TestCorruptionTolerance:
    def test_torn_trailing_line_is_skipped(self, tmp_path):
        journal = EventJournal(tmp_path / "events.jsonl")
        journal.emit("ok", n=1)
        journal.emit("ok", n=2)
        with open(journal.path, "a") as handle:
            handle.write('{"schema": "repro-event/1", "event": "torn", "n')
        records = read_events(journal.path)
        assert [r["n"] for r in records] == [1, 2]

    def test_garbage_mid_file_is_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        journal = EventJournal(path)
        journal.emit("ok", n=1)
        with open(path, "a") as handle:
            handle.write("\x00\x00 not json at all\n")
            handle.write("[1, 2, 3]\n")  # valid JSON, wrong shape
        journal.emit("ok", n=2)
        assert [r["n"] for r in read_events(path)] == [1, 2]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_events(tmp_path / "nope.jsonl") == []


class TestQuerying:
    def test_grep_substring_matches_any_field(self, tmp_path):
        journal = EventJournal(tmp_path / "events.jsonl")
        journal.emit("job.accepted", job_id="job-0001")
        journal.emit("stage.miss", stage="placement")
        journal.emit("job.completed", job_id="job-0001")
        assert len(read_events(journal.path, grep="job-0001")) == 2
        assert len(read_events(journal.path, grep="PLACEMENT")) == 1  # ci
        assert read_events(journal.path, grep="nonexistent") == []

    def test_limit_keeps_most_recent(self, tmp_path):
        journal = EventJournal(tmp_path / "events.jsonl")
        for i in range(10):
            journal.emit("tick", n=i)
        assert [r["n"] for r in read_events(journal.path, limit=3)] == [7, 8, 9]


class TestFollow:
    def test_follow_yields_appended_records(self, tmp_path):
        journal = EventJournal(tmp_path / "events.jsonl")
        journal.emit("before", n=0)
        seen = []
        done = threading.Event()

        def consume():
            for record in follow_events(
                journal.path, poll_s=0.01, stop=lambda: len(seen) >= 3
            ):
                seen.append(record["event"])
            done.set()

        thread = threading.Thread(target=consume, daemon=True)
        thread.start()
        journal.emit("during", n=1)
        journal.emit("after", n=2)
        assert done.wait(timeout=5), "follow_events never caught up"
        thread.join(timeout=1)
        assert seen[:3] == ["before", "during", "after"]


class TestAmbientJournal:
    def test_emit_event_is_noop_without_journal(self, tmp_path):
        previous = activate_journal(None)
        try:
            assert emit_event("orphan", n=1) is None
        finally:
            activate_journal(previous)

    def test_activate_and_emit(self, tmp_path):
        journal = EventJournal(tmp_path / "events.jsonl", source="test")
        previous = activate_journal(journal)
        try:
            assert current_journal() is journal
            record = emit_event("ambient", n=7)
            assert record is not None and record["n"] == 7
        finally:
            activate_journal(previous)
        (read,) = read_events(journal.path)
        assert read["event"] == "ambient" and read["source"] == "test"

    def test_activate_returns_previous_for_restoration(self, tmp_path):
        first = EventJournal(tmp_path / "a.jsonl")
        second = EventJournal(tmp_path / "b.jsonl")
        outer = activate_journal(first)
        try:
            assert activate_journal(second) is first
            assert activate_journal(first) is second
        finally:
            activate_journal(outer)
