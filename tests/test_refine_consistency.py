"""The fast refine engine is pinned to the reference implementation.

The placer's phase-3 refinement was rewritten from an O(cells × degree)
per-pass rescan into a cached-summary engine (corner-cost maxima with
lazy invalidation plus search-box fail guards).  The rewrite must be a
pure optimization: over randomized netlists and every registered-design
shape knob we can cheaply reach, both engines must accept the *same*
moves and land every cell on the *same* tiles.

``Placer.refine_engine`` selects the engine; everything upstream of
phase 3 (BRAM serpentine, greedy seating) is identical for a fixed seed,
so whole-``place()`` comparison isolates the refine rewrite.
"""

from __future__ import annotations

import random

import pytest

from repro.physical.device import get_device
from repro.physical.fabric import Fabric
from repro.physical.placement import Placer
from repro.rtl.netlist import CellKind, Netlist

KINDS = (
    (CellKind.LOGIC, {"luts": (1, 600)}),
    (CellKind.FF, {"ffs": (1, 900)}),
    (CellKind.DSP, {"dsps": (1, 4)}),
    (CellKind.BRAM, {"brams": (1, 2)}),
    (CellKind.CTRL, {"luts": (1, 40)}),
    (CellKind.FIFO, {"luts": (4, 64), "ffs": (8, 64)}),
)


def _random_netlist(seed: int, n_cells: int) -> Netlist:
    rng = random.Random(seed)
    netlist = Netlist(name=f"rand{seed}")
    cells = []
    for i in range(n_cells):
        kind, areas = KINDS[rng.randrange(len(KINDS))]
        attrs = {name: rng.randint(lo, hi) for name, (lo, hi) in areas.items()}
        cells.append(netlist.new_cell(f"c{i}", kind, **attrs))
    for i in range(rng.randint(1, 3)):
        cells.append(netlist.new_cell(f"io{i}", CellKind.PORT))
    for i in range(int(n_cells * 1.5)):
        driver = cells[rng.randrange(len(cells))]
        n_sinks = rng.randint(1, 6)
        sinks = [
            (cells[rng.randrange(len(cells))], f"p{j}")
            for j in range(n_sinks)
        ]
        netlist.connect(f"n{i}", driver, sinks)
    return netlist


def _place(engine: str, netlist: Netlist, seed: int, device: str):
    placer = Placer(Fabric(get_device(device)), seed=seed)
    placer.refine_engine = engine  # instance override, class default "fast"
    placement = placer.place(netlist, refine_passes=3)
    return placement, placer


@pytest.mark.parametrize("seed", range(8))
def test_fast_refine_matches_reference_on_random_netlists(seed):
    netlist = _random_netlist(seed, n_cells=40 + 25 * seed)
    device = ("zc706", "aws-f1")[seed % 2]
    fast, fast_placer = _place("fast", netlist, 2020 + seed, device)
    ref, ref_placer = _place("reference", netlist, 2020 + seed, device)

    assert fast.pos == ref.pos
    assert fast.radius == ref.radius
    assert fast_placer._chunks == ref_placer._chunks


class _RecordingPlacer(Placer):
    """Records every accepted refine move, in acceptance order."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.accepted = []

    def _refine_trial(self, cell, st, occupancy, placement, threshold):
        result = super()._refine_trial(cell, st, occupancy, placement, threshold)
        if result:
            self.accepted.append(cell.name)
        return result


def test_engines_agree_on_accepted_move_sequence():
    """The accepted-move *sequences* match, not just final coordinates.

    (Attempt counts legitimately differ — the fast engine's fail guards
    exist precisely to skip trials the reference engine re-runs and
    re-rejects — but every move one engine accepts, the other must accept
    too, in the same order.)
    """
    netlist = _random_netlist(99, n_cells=160)
    moves = {}
    for engine in ("fast", "reference"):
        placer = _RecordingPlacer(Fabric(get_device("aws-f1")), seed=7)
        placer.refine_engine = engine
        placer.place(netlist, refine_passes=3)
        moves[engine] = placer.accepted
    assert moves["fast"], "refine accepted no moves — test is vacuous"
    assert moves["fast"] == moves["reference"]
