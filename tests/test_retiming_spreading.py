"""Tests for movable-register retiming and chain spreading."""

import pytest

from repro.physical.placement import Placement
from repro.physical.retiming import clone_netlist, clone_placement, retime_movable
from repro.physical.spreading import spread_movable_chains
from repro.physical.timing import TimingAnalyzer
from repro.rtl.netlist import CellKind, Netlist, NetKind


def unbalanced_chain():
    """reg -> small_logic -> big_logic -> movable reg -> reg.

    The movable register captures at the end of a heavy first cycle; a
    backward move (across ``big``) re-balances delay into the second cycle.
    """
    nl = Netlist("u")
    a = nl.new_cell("a", CellKind.FF, ffs=8, width=8, delay_ns=0.1)
    small = nl.new_cell("small", CellKind.LOGIC, luts=8, delay_ns=0.4)
    big = nl.new_cell("big", CellKind.LOGIC, luts=8, delay_ns=3.0)
    mov = nl.new_cell("mov", CellKind.FF, ffs=8, width=8, delay_ns=0.1, movable=True)
    q = nl.new_cell("q", CellKind.FF, ffs=8, width=8, delay_ns=0.1)
    nl.connect("n1", a, [(small, "i")], width=8)
    nl.connect("n2", small, [(big, "i")], width=8)
    nl.connect("n3", big, [(mov, "d")], width=8)
    nl.connect("n4", mov, [(q, "d")], width=8)
    placement = Placement()
    for i, cell in enumerate(nl.cells.values()):
        placement.put(cell, i * 2, 0)
    return nl, placement


class TestRetiming:
    def test_backward_move_improves_period(self):
        nl, placement = unbalanced_chain()
        before = TimingAnalyzer(nl, placement).analyze().raw_period_ns
        new_nl, new_pl, moves = retime_movable(nl, placement)
        after = TimingAnalyzer(new_nl, new_pl).analyze().raw_period_ns
        assert moves >= 1
        assert after < before

    def test_inputs_untouched_on_failure(self):
        nl, placement = unbalanced_chain()
        nl.cells["mov"].movable = False
        new_nl, new_pl, moves = retime_movable(nl, placement)
        assert moves == 0
        assert new_nl is nl and new_pl is placement

    def test_retimed_netlist_still_valid(self):
        nl, placement = unbalanced_chain()
        new_nl, _pl, _m = retime_movable(nl, placement)
        new_nl.validate()

    def test_clone_helpers_deep(self):
        nl, placement = unbalanced_chain()
        c = clone_netlist(nl)
        p = clone_placement(placement)
        c.cells["big"].delay_ns = 42
        p.put(c.cells["big"], 99, 99)
        assert nl.cells["big"].delay_ns == 3.0
        assert placement.pos["big"] != (99, 99)


def long_haul_chain(regs=3, span=60.0):
    """src --reg--reg--reg--> far sink, with all regs piled at the source."""
    nl = Netlist("haul")
    src = nl.new_cell("src", CellKind.FF, ffs=8, width=8, delay_ns=0.1)
    prev = src
    for i in range(regs):
        reg = nl.new_cell(
            f"r{i}", CellKind.FF, ffs=8, width=8, delay_ns=0.1, movable=True
        )
        nl.connect(f"n{i}", prev, [(reg, "d")], width=8, kind=NetKind.MEM)
        prev = reg
    sink = nl.new_cell("sink", CellKind.BRAM, brams=1, delay_ns=0.8)
    nl.connect("last", prev, [(sink, "din")], width=8, kind=NetKind.MEM)
    placement = Placement()
    placement.put(src, 0, 0)
    for i in range(regs):
        placement.put(nl.cells[f"r{i}"], 0.5, 0)  # piled near the source
    placement.put(sink, span, 0)
    return nl, placement


class TestSpreading:
    def test_registers_spread_along_route(self):
        nl, placement = long_haul_chain()
        moved = spread_movable_chains(nl, placement)
        assert moved == 3
        xs = [placement.pos[f"r{i}"][0] for i in range(3)]
        assert xs == sorted(xs)
        assert xs[0] == pytest.approx(15.0, abs=0.5)
        assert xs[2] == pytest.approx(45.0, abs=0.5)

    def test_spreading_improves_worst_hop(self):
        nl, placement = long_haul_chain()
        before = TimingAnalyzer(nl, placement).analyze().raw_period_ns
        spread_movable_chains(nl, placement)
        after = TimingAnalyzer(nl, placement).analyze().raw_period_ns
        assert after < before

    def test_non_movable_chain_untouched(self):
        nl, placement = long_haul_chain()
        for i in range(3):
            nl.cells[f"r{i}"].movable = False
        original = dict(placement.pos)
        assert spread_movable_chains(nl, placement) == 0
        assert placement.pos == original

    def test_fanout_breaks_chain(self):
        nl, placement = long_haul_chain()
        # r1 gains a second sink: the chain is broken there
        extra = nl.new_cell("extra", CellKind.FF, ffs=8, delay_ns=0.1)
        placement.put(extra, 1, 1)
        nl.nets["n2"].add_sink(extra, "d")
        spread_movable_chains(nl, placement)
        # r2 still spreads on its own (single-link chain), r0/r1 spread too,
        # but no crash and all cells retain positions
        assert all(f"r{i}" in {n for n in placement.pos} for i in range(3))
