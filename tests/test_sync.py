"""Tests for synchronization analysis and pruning (§4.2)."""

import pytest

from repro.errors import DynamicLatencyError
from repro.ir.builder import DFGBuilder
from repro.ir.program import Buffer, Design, Fifo, Kernel, Loop
from repro.ir.types import i32
from repro.sync.flowgraph import dfg_components, split_dfg_components
from repro.sync.pruning import (
    longest_latency_call,
    prune_call_sync,
    prune_synchronization,
    split_independent_flows,
)


def fused_flows_design(flows=4):
    """One loop containing `flows` independent fifo->fifo paths (Fig. 5a)."""
    design = Design("fused", dataflow=True)
    b = DFGBuilder("body")
    for i in range(flows):
        fin = design.add_fifo(Fifo(f"in{i}", i32, external=True))
        fout = design.add_fifo(Fifo(f"out{i}", i32, external=True))
        x = b.fifo_read(fin)
        b.fifo_write(fout, b.add(x, b.const(1, i32)))
    kernel = design.add_kernel(Kernel("k"))
    kernel.add_loop(Loop("fused", b.build(), trip_count=None, pipeline=True))
    design.verify()
    return design


def pe_farm_dfg(latencies, dynamic_index=None):
    b = DFGBuilder("farm")
    seed = b.input("seed", i32)
    results = []
    for i, latency in enumerate(latencies):
        call = b.call(
            f"PE_{i}",
            [seed],
            i32,
            latency=latency,
            dynamic_latency=(i == dynamic_index),
            name=f"r{i}",
        )
        results.append(call.result)
    b.reduce(results, "or")
    return b.build()


class TestComponents:
    def test_independent_flows_found(self):
        design = fused_flows_design(4)
        body = design.kernels[0].loops[0].body
        assert len(dfg_components(body)) == 4

    def test_values_connect(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        y = b.add(x, x)
        b.sub(y, x)
        assert len(dfg_components(b.build())) == 1

    def test_shared_buffer_connects(self):
        buf = Buffer("m", i32, 16)
        b = DFGBuilder()
        b.store(buf, b.input("a", i32), b.input("d", i32))
        _ = b.load(buf, b.input("a2", i32))
        assert len(dfg_components(b.build())) == 1

    def test_constants_do_not_connect(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        y = b.input("y", i32)
        b.add(x, x)
        b.add(y, y)
        assert len(dfg_components(b.build())) == 2

    def test_split_preserves_ops(self):
        design = fused_flows_design(3)
        body = design.kernels[0].loops[0].body
        flows = split_dfg_components(body)
        assert len(flows) == 3
        total = sum(len(f) for f in flows)
        consts = sum(1 for op in body.ops if op.opcode.value == "const")
        assert total == len(body) - consts + 3  # consts re-created per flow

    def test_split_single_component_clones(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        b.add(x, x)
        flows = split_dfg_components(b.build())
        assert len(flows) == 1


class TestSplitIndependentFlows:
    def test_loops_multiplied(self):
        design = fused_flows_design(4)
        split = split_independent_flows(design)
        assert len(split.kernels[0].loops) == 4
        split.verify()

    def test_loop_pragmas_preserved(self):
        design = fused_flows_design(2)
        split = split_independent_flows(design)
        assert all(l.pipeline for l in split.kernels[0].loops)

    def test_each_flow_sees_one_port_pair(self):
        design = fused_flows_design(4)
        split = split_independent_flows(design)
        for loop in split.kernels[0].loops:
            reads, writes = loop.fifo_endpoints()
            assert len(reads) == 1 and len(writes) == 1

    def test_connected_loop_untouched(self):
        design = Design("solo")
        fin = design.add_fifo(Fifo("in", i32, external=True))
        fout = design.add_fifo(Fifo("out", i32, external=True))
        b = DFGBuilder("body")
        x = b.fifo_read(fin)
        b.fifo_write(fout, x)
        k = design.add_kernel(Kernel("k"))
        k.add_loop(Loop("l", b.build(), pipeline=True))
        split = split_independent_flows(design)
        assert len(split.kernels[0].loops) == 1

    def test_original_design_untouched(self):
        design = fused_flows_design(4)
        split_independent_flows(design)
        assert len(design.kernels[0].loops) == 1


class TestCallSyncPruning:
    def test_longest_latency_wins(self):
        dfg = pe_farm_dfg([10, 30, 20])
        assert longest_latency_call(dfg).attrs["latency"] == 30

    def test_tie_broken_by_name(self):
        dfg = pe_farm_dfg([30, 30])
        winner = longest_latency_call(dfg)
        assert winner.attrs["latency"] == 30

    def test_dynamic_latency_refused(self):
        dfg = pe_farm_dfg([10, 20, 30], dynamic_index=1)
        with pytest.raises(DynamicLatencyError):
            longest_latency_call(dfg)

    def test_no_calls_refused(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        b.add(x, x)
        with pytest.raises(DynamicLatencyError):
            longest_latency_call(b.build())

    def test_prune_marks_winner(self):
        design = Design("farm")
        k = design.add_kernel(Kernel("k"))
        k.add_loop(Loop("farm", pe_farm_dfg([5, 25, 15]), trip_count=8))
        pruned = prune_call_sync(design)
        calls = [
            op
            for op in pruned.kernels[0].loops[0].body.ops
            if op.opcode.value == "call"
        ]
        flags = [op.attrs.get("sync_pruned") for op in calls]
        assert flags.count(True) == 1
        assert calls[flags.index(True)].attrs["latency"] == 25

    def test_prune_skips_dynamic(self):
        design = Design("farm")
        k = design.add_kernel(Kernel("k"))
        k.add_loop(Loop("farm", pe_farm_dfg([5, 25], dynamic_index=0), trip_count=8))
        from repro.sync.pruning import SyncPruningReport

        report = SyncPruningReport()
        pruned = prune_call_sync(design, report)
        assert report.skipped_dynamic == ["k/farm"]
        calls = [
            op
            for op in pruned.kernels[0].loops[0].body.ops
            if op.opcode.value == "call"
        ]
        assert not any(op.attrs.get("sync_pruned") for op in calls)

    def test_single_call_not_marked(self):
        design = Design("one")
        k = design.add_kernel(Kernel("k"))
        k.add_loop(Loop("l", pe_farm_dfg([7]), trip_count=8))
        pruned = prune_call_sync(design)
        (call,) = [
            op
            for op in pruned.kernels[0].loops[0].body.ops
            if op.opcode.value == "call"
        ]
        assert "sync_pruned" not in call.attrs


class TestCombinedPass:
    def test_report_summary(self):
        design = fused_flows_design(4)
        _pruned, report = prune_synchronization(design)
        assert "4 flow(s)" in report.summary()
        assert report.split_loops == ["k/fused"]
