"""Tests for repro.ir.dfg and repro.ir.builder."""

import pytest

from repro.errors import IRError, VerificationError
from repro.ir.builder import DFGBuilder
from repro.ir.dfg import DFG
from repro.ir.ops import Opcode
from repro.ir.program import Buffer, Fifo
from repro.ir.types import i1, i16, i32


def simple_chain():
    b = DFGBuilder("chain")
    x = b.input("x", i32)
    y = b.input("y", i32)
    s = b.add(x, y, name="s")
    d = b.sub(s, b.const(1, i32), name="d")
    return b, x, y, s, d


class TestConstruction:
    def test_builder_builds_verified(self):
        b, *_ = simple_chain()
        dfg = b.build()
        assert len(dfg) == 3  # const + add + sub

    def test_unique_names(self):
        dfg = DFG()
        a = dfg.input("x", i32)
        b = dfg.input("x", i32)
        assert a.name != b.name

    def test_foreign_operand_rejected(self):
        d1, d2 = DFG("a"), DFG("b")
        x = d1.input("x", i32)
        y = d2.input("y", i32)
        with pytest.raises(IRError):
            d2.add_op(Opcode.ADD, [x, y])

    def test_inputs_and_outputs(self):
        b, x, y, s, d = simple_chain()
        dfg = b.build()
        assert set(v.name for v in dfg.inputs) == {"x", "y"}
        assert [v.name for v in dfg.outputs] == [d.name]

    def test_fanout_query(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        b.add(x, x)
        b.sub(x, b.const(0, i32))
        assert b.dfg.fanout(x) == 3

    def test_broadcast_sources_sorted(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        y = b.input("y", i32)
        for _ in range(4):
            b.add(x, y)
        sources = b.dfg.broadcast_sources(threshold=2)
        assert sources[0][0] is x or sources[0][0] is y
        assert sources[0][1] == 4


class TestBuilderIdioms:
    def test_min_max_expand_to_cmp_select(self):
        b = DFGBuilder()
        x, y = b.input("x", i32), b.input("y", i32)
        b.min_(x, y)
        b.max_(x, y)
        dfg = b.build()
        assert dfg.count(Opcode.SELECT) == 2
        assert dfg.count(Opcode.LT) == 1
        assert dfg.count(Opcode.GT) == 1

    def test_abs_diff(self):
        b = DFGBuilder()
        x, y = b.input("x", i32), b.input("y", i32)
        r = b.abs_diff(x, y)
        assert r.type == i32
        assert b.dfg.count(Opcode.SUB) == 2

    def test_reduce_tree_shape(self):
        b = DFGBuilder()
        leaves = [b.input(f"v{i}", i32) for i in range(8)]
        b.reduce(leaves, "add")
        assert b.dfg.count(Opcode.ADD) == 7

    def test_reduce_odd_count(self):
        b = DFGBuilder()
        leaves = [b.input(f"v{i}", i32) for i in range(5)]
        root = b.reduce(leaves, "or")
        assert root.type == i32
        assert b.dfg.count(Opcode.OR) == 4

    def test_slice_is_free_trunc(self):
        b = DFGBuilder()
        x = b.input("x", DFGBuilder("t").input("q", i32).type.with_width(128))
        s = b.slice_(x, 32, i32)
        assert s.producer.opcode is Opcode.TRUNC
        assert s.producer.attrs["lsb"] == 32

    def test_mem_ops(self):
        buf = Buffer("m", i32, 64)
        b = DFGBuilder()
        addr = b.input("a", i32)
        data = b.load(buf, addr)
        b.store(buf, addr, data)
        dfg = b.build()
        assert len(dfg.mem_ops()) == 2

    def test_fifo_ops(self):
        fifo = Fifo("f", i32)
        b = DFGBuilder()
        x = b.fifo_read(fifo)
        b.fifo_write(fifo, x)
        assert len(b.dfg.fifo_ops()) == 2


class TestRegInsertion:
    def test_insert_reg_rewires_all_consumers(self):
        b, x, y, s, d = simple_chain()
        dfg = b.build()
        reg = dfg.insert_reg_after(s)
        dfg.verify()
        assert s.fanout == 1  # only the REG reads s now
        assert reg.result.fanout == 1

    def test_insert_reg_subset(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        y = b.input("y", i32)
        a = b.add(x, y)
        c = b.sub(x, y)
        dfg = b.build()
        dfg.insert_reg_after(x, consumers=[a.producer])
        dfg.verify()
        assert x.fanout == 2  # reg + the sub

    def test_insert_reg_requires_real_consumer(self):
        b, x, y, s, d = simple_chain()
        dfg = b.build()
        with pytest.raises(IRError):
            dfg.insert_reg_after(s, consumers=[x.uses[0]])
        # x's consumer doesn't read s... unless it does; build a clean case:
        b2 = DFGBuilder()
        p = b2.input("p", i32)
        q = b2.input("q", i32)
        op = b2.add(p, q).producer
        with pytest.raises(IRError):
            b2.dfg.insert_reg_after(b2.const(1, i32), consumers=[op])

    def test_topo_order_valid_after_insertion(self):
        b, x, y, s, d = simple_chain()
        dfg = b.build()
        dfg.insert_reg_after(s)
        seen = set()
        for op in dfg.topo_order():
            for operand in op.operands:
                if operand.producer is not None:
                    assert operand.producer.name in seen
            seen.add(op.name)


class TestMutationAndClone:
    def test_remove_op_with_uses_rejected(self):
        b, x, y, s, d = simple_chain()
        dfg = b.build()
        with pytest.raises(IRError):
            dfg.remove_op(s.producer)

    def test_remove_leaf_op(self):
        b, x, y, s, d = simple_chain()
        dfg = b.build()
        dfg.remove_op(d.producer)
        dfg.verify()
        assert len(dfg) == 2

    def test_clone_is_deep(self):
        b, x, y, s, d = simple_chain()
        dfg = b.build()
        clone = dfg.clone()
        clone.verify()
        assert len(clone) == len(dfg)
        assert clone.values[s.name] is not s

    def test_clone_preserves_loop_invariance(self):
        b = DFGBuilder()
        x = b.input("x", i32, loop_invariant=True)
        b.add(x, x)
        clone = b.build().clone()
        assert clone.values["x"].loop_invariant

    def test_verify_catches_stale_use_list(self):
        b, x, y, s, d = simple_chain()
        dfg = b.build()
        # Corrupt a use list deliberately.
        s.uses.clear()
        with pytest.raises(VerificationError):
            dfg.verify()
