"""Fast tests for the experiment drivers (repro.experiments).

The full table/figure reproductions run in ``benchmarks/``; here we check
the drivers produce the paper's *shapes* at reduced scale.
"""

import pytest

from repro.experiments import (
    format_fig16,
    format_fig17,
    format_fig9,
    format_table1,
    run_fig16,
    run_fig17,
    run_fig9,
    run_table1,
)
from repro.experiments.paper_data import (
    FIG17_END_ONLY_BITS,
    FIG17_MIN_AREA_BITS,
    TABLE1,
    table1_average_gain,
)
from repro.flow import Flow


class TestPaperData:
    def test_table1_covers_all_designs(self):
        from repro.designs import design_names

        assert set(TABLE1) == set(design_names())

    def test_average_gain_close_to_53(self):
        assert table1_average_gain() == pytest.approx(53.0, abs=3.0)

    def test_fig17_anchor_consistency(self):
        assert FIG17_END_ONLY_BITS / FIG17_MIN_AREA_BITS == pytest.approx(8.0, abs=0.1)


class TestFig17Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig17(width=32)

    def test_spindle_shape(self, result):
        profile = result.profile
        assert max(profile) >= 1024
        assert min(profile) == 32

    def test_waist_before_final_widening(self, result):
        assert result.waist_stage < len(result.profile) - 2

    def test_min_area_saves(self, result):
        assert result.saving_factor > 3.0

    def test_cuts_include_waist_region(self, result):
        assert result.min_plan.cuts[0] >= result.waist_stage - 2

    def test_format_mentions_paper(self, result):
        assert "7,968" in format_fig17(result) or "7968" in format_fig17(result)


class TestFig9Driver:
    @pytest.fixture(scope="class")
    def panels(self):
        return run_fig9(factors=(1, 16, 128))

    def test_three_panels(self, panels):
        assert set(panels) == {"add_i32", "load_bram", "mul_f32"}

    def test_hls_series_flat(self, panels):
        for series in panels.values():
            assert len(set(series.hls_predicted)) == 1

    def test_measured_grows(self, panels):
        for series in panels.values():
            assert series.measured[-1] > series.measured[0]

    def test_calibrated_is_max(self, panels):
        for series in panels.values():
            for hls, cal in zip(series.hls_predicted, series.calibrated):
                assert cal >= hls - 1e-9

    def test_fmul_crossover_late(self, panels):
        # conservative prediction: measurement crosses only at larger factors
        assert panels["mul_f32"].crossover_factor() >= 16
        assert panels["add_i32"].crossover_factor() <= 16

    def test_format_runs(self, panels):
        assert "measured" in format_fig9(panels)


class TestFig16Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig16(iterations=(1, 4))

    def test_skid_beats_stall(self, result):
        for p in result.points:
            assert p.fmax_skid_mhz > p.fmax_stall_mhz

    def test_stall_degrades_with_depth(self, result):
        assert result.points[-1].fmax_stall_mhz < result.points[0].fmax_stall_mhz

    def test_buffer_grows_with_depth(self, result):
        assert result.points[-1].skid_buffer_bits > result.points[0].skid_buffer_bits

    def test_format_runs(self, result):
        assert "stall MHz" in format_fig16(result)


class TestTable1Driver:
    def test_single_design_row(self, synthetic_table):
        flow = Flow(calibration=synthetic_table)
        entries = run_table1(designs=["face_detection"], flow=flow)
        assert len(entries) == 1
        entry = entries[0]
        assert entry.gain_pct > 0
        text = format_table1(entries)
        assert "face_detection" in text and "paper" in text
