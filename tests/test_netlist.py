"""Tests for the structural netlist (repro.rtl.netlist)."""

import pytest

from repro.errors import RTLError
from repro.rtl.netlist import Cell, CellKind, Net, Netlist, NetKind


def ff(nl, name, **kw):
    return nl.new_cell(name, CellKind.FF, delay_ns=0.1, ffs=1, **kw)


def logic(nl, name, delay=0.5, **kw):
    return nl.new_cell(name, CellKind.LOGIC, delay_ns=delay, luts=4, **kw)


class TestCells:
    def test_sequential_kinds(self):
        assert CellKind.FF.is_sequential
        assert CellKind.BRAM.is_sequential
        assert CellKind.CTRL.is_sequential
        assert not CellKind.LOGIC.is_sequential
        assert not CellKind.DSP.is_sequential

    def test_site_count_scales_with_area(self):
        small = Cell("s", CellKind.LOGIC, luts=10)
        big = Cell("b", CellKind.LOGIC, luts=10_000)
        assert big.site_count > small.site_count

    def test_duplicate_cell_rejected(self):
        nl = Netlist("n")
        nl.add_cell(Cell("a", CellKind.FF))
        with pytest.raises(RTLError):
            nl.add_cell(Cell("a", CellKind.FF))

    def test_new_cell_uniquifies(self):
        nl = Netlist("n")
        a = ff(nl, "x")
        b = ff(nl, "x")
        assert a.name != b.name


class TestNets:
    def test_connect_and_fanout(self):
        nl = Netlist("n")
        src = ff(nl, "src")
        sinks = [logic(nl, f"l{i}") for i in range(5)]
        net = nl.connect("d", src, [(s, "i") for s in sinks])
        assert net.fanout == 5
        assert nl.fanout_of(src) == 5

    def test_driver_net_of(self):
        nl = Netlist("n")
        src = ff(nl, "src")
        sink = ff(nl, "snk")
        net = nl.connect("d", src, [(sink, "d")])
        assert nl.driver_net_of(src) is net
        assert nl.driver_net_of(sink) is None

    def test_input_nets_of(self):
        nl = Netlist("n")
        a, b, c = ff(nl, "a"), ff(nl, "b"), logic(nl, "c")
        nl.connect("n1", a, [(c, "i0")])
        nl.connect("n2", b, [(c, "i1")])
        assert len(nl.input_nets_of(c)) == 2

    def test_high_fanout_sorted(self):
        nl = Netlist("n")
        a, b = ff(nl, "a"), ff(nl, "b")
        nl.connect("small", a, [(logic(nl, f"s{i}"), "i") for i in range(8)])
        nl.connect("big", b, [(logic(nl, f"t{i}"), "i") for i in range(20)])
        nets = nl.high_fanout_nets(threshold=8)
        assert [n.name for n in nets] == ["big", "small"]

    def test_nets_of_kind(self):
        nl = Netlist("n")
        a = ff(nl, "a")
        nl.connect("e", a, [(ff(nl, "b"), "ce")], kind=NetKind.ENABLE)
        assert len(nl.nets_of_kind(NetKind.ENABLE)) == 1

    def test_connect_uniquifies_names(self):
        nl = Netlist("n")
        a = ff(nl, "a")
        nl.connect("x", a, [(ff(nl, "b"), "d")])
        net2 = nl.connect("x", a, [(ff(nl, "c"), "d")])
        assert net2.name != "x"


class TestValidation:
    def test_valid_netlist_passes(self):
        nl = Netlist("n")
        a = ff(nl, "a")
        c = logic(nl, "c")
        q = ff(nl, "q")
        nl.connect("n1", a, [(c, "i")])
        nl.connect("n2", c, [(q, "d")])
        nl.validate()

    def test_sinkless_net_rejected(self):
        nl = Netlist("n")
        a = ff(nl, "a")
        nl.add_net(Net("empty", a))
        with pytest.raises(RTLError):
            nl.validate()

    def test_comb_loop_detected(self):
        nl = Netlist("n")
        c1, c2 = logic(nl, "c1"), logic(nl, "c2")
        nl.connect("f", c1, [(c2, "i")])
        nl.connect("b", c2, [(c1, "i")])
        with pytest.raises(RTLError, match="combinational loop"):
            nl.validate()

    def test_seq_breaks_cycle(self):
        nl = Netlist("n")
        c = logic(nl, "c")
        r = ff(nl, "r")
        nl.connect("f", c, [(r, "d")])
        nl.connect("b", r, [(c, "i")])
        nl.validate()  # register in the loop: fine

    def test_foreign_driver_rejected(self):
        nl = Netlist("n")
        other = Cell("ghost", CellKind.FF)
        with pytest.raises(RTLError):
            nl.add_net(Net("g", other, [(other, "d")]))


class TestAreaAndMerge:
    def test_area_totals(self):
        nl = Netlist("n")
        nl.new_cell("a", CellKind.LOGIC, luts=10, ffs=2)
        nl.new_cell("b", CellKind.BRAM, brams=1)
        nl.new_cell("c", CellKind.DSP, dsps=3)
        area = nl.area()
        assert area == {"luts": 10, "ffs": 2, "brams": 1, "dsps": 3}

    def test_merge_copies_everything(self):
        src = Netlist("src")
        a = ff(src, "a")
        c = logic(src, "c")
        src.connect("n", a, [(c, "i")])
        dst = Netlist("dst")
        mapping = dst.merge(src)
        assert set(mapping) == {"a", "c"}
        assert len(dst.nets) == 1
        dst.validate()
        # deep copy: mutating the clone leaves the source alone
        mapping["a"].delay_ns = 99
        assert a.delay_ns != 99

    def test_merge_with_prefix(self):
        src = Netlist("src")
        a = ff(src, "a")
        src.connect("n", a, [(ff(src, "b"), "d")])
        dst = Netlist("dst")
        dst.merge(src, prefix="u0_")
        assert "u0_a" in dst.cells
