"""End-to-end service telemetry: traces, /metrics, the event journal.

The acceptance scenario of the telemetry work: a ``ServiceClient`` request
yields ONE merged trace containing the daemon's job span plus spans from
every worker attempt — including an attempt that was SIGKILL'd mid-compile
(rebuilt from the worker's trace spool) — and ``GET /metrics`` stays
parseable while a compile is in flight.

Entry wrappers are module-level (like :mod:`test_service_daemon`) so they
survive both ``fork`` and ``spawn`` start methods; they wrap the *real*
``worker_entry`` so the spool/journal plumbing under test actually runs.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time

from repro import obs
from repro.obs.exposition import parse_exposition
from repro.obs.journal import EventJournal, read_events
from repro.service.daemon import FlowService
from repro.service.request import FlowRequest
from repro.service.server import serve_in_thread
from repro.service.client import ServiceClient
from repro.service.store import ResultStore
from repro.service.traces import TraceStore

#: Gate file env var: while the file exists, the gated compile idles under
#: an open span — giving tests a window to SIGKILL or scrape mid-flight.
GATE_ENV = "REPRO_TELEMETRY_TEST_GATE"


def _gated_compile_entry(request_dict, store_root, conn):
    """Real worker_entry, but the compile idles while the gate file exists.

    The idle happens *inside* ``execute_request`` — under the worker's live
    tracer, after the trace spool thread has started — so a SIGKILL during
    the gate leaves a spool with an in-flight span on disk, exactly like a
    kill mid-placement would.
    """
    from repro.service import worker

    real = worker.execute_request

    def gated(request):
        gate = os.environ.get(GATE_ENV)
        with obs.span("gated-hold"):
            deadline = time.time() + 60
            while gate and os.path.exists(gate) and time.time() < deadline:
                time.sleep(0.02)
        return real(request)

    worker.execute_request = gated
    worker.worker_entry(request_dict, store_root, conn)


def _service(tmp_path, **kwargs):
    kwargs.setdefault("store", ResultStore(str(tmp_path / "results")))
    kwargs.setdefault("quarantine_dir", str(tmp_path / "quarantine"))
    kwargs.setdefault(
        "journal", EventJournal(tmp_path / "journal" / "events.jsonl",
                               source="daemon")
    )
    kwargs.setdefault("trace_store", TraceStore(str(tmp_path / "traces")))
    kwargs.setdefault("backoff_s", 0.01)
    kwargs.setdefault("backoff_cap_s", 0.05)
    return FlowService(**kwargs)


class TestTracePropagation:
    def test_client_request_yields_one_merged_trace(self, tmp_path):
        """Client-minted trace_id → daemon span → worker span, one doc."""
        traces = TraceStore(str(tmp_path / "traces"))
        service = _service(tmp_path, workers=1, trace_store=traces)
        with serve_in_thread(service) as server:
            client = ServiceClient(port=server.port)
            record = client.submit("matmul", config="orig", wait=True)
            assert record["state"] == "done"
            trace_id = record["trace_id"]
            assert len(trace_id) == 16

            document = client.get_trace(record["digest"])
        assert document["schema"] == "repro-trace/1"
        assert document["trace_id"] == trace_id
        assert document["attempts"] == 1

        daemon_span = document["daemon_span"]
        assert daemon_span["name"] == "service.job"
        assert daemon_span["attrs"]["trace_id"] == trace_id

        (worker_span,) = document["worker_spans"]
        assert worker_span["attrs"]["trace_id"] == trace_id
        assert worker_span["attrs"]["parent_span_id"] == (
            daemon_span["attrs"]["span_id"]
        )
        assert worker_span["attrs"]["attempt"] == 1
        # The worker span is the real flow trace, stages included.
        child_names = [c["name"] for c in worker_span["children"]]
        assert "scheduling" in child_names

    def test_sigkilled_attempt_survives_in_merged_trace(
        self, tmp_path, monkeypatch
    ):
        """Kill attempt 1 mid-compile: the merged trace must still contain
        its spans (partial, from the spool) next to attempt 2's."""
        gate = tmp_path / "gate"
        gate.write_text("hold\n")
        monkeypatch.setenv(GATE_ENV, str(gate))
        traces = TraceStore(str(tmp_path / "traces"))
        request = FlowRequest.make("matmul", config="orig")

        async def scenario():
            service = _service(
                tmp_path, workers=1, max_attempts=3,
                entry=_gated_compile_entry, trace_store=traces,
            )
            await service.start()
            try:
                job, _how = service.submit(request)
                deadline = time.time() + 30
                while job.worker_pid is None and time.time() < deadline:
                    await asyncio.sleep(0.01)
                assert job.worker_pid is not None, "worker never started"
                first_pid = job.worker_pid
                # Give the spool thread time to write at least one snapshot
                # with the gated-hold span in flight.
                await asyncio.sleep(0.4)
                os.kill(first_pid, signal.SIGKILL)
                gate.unlink()  # attempt 2 compiles for real
                await service.wait(job, timeout=180)
                assert job.state == "done"
                assert job.attempts == 2
                return job
            finally:
                await service.stop()

        job = asyncio.run(scenario())
        document = traces.get(job.digest)
        assert document is not None
        assert document["attempts"] == 2
        assert document["trace_id"] == job.trace_id

        by_attempt = {}
        for span in document["worker_spans"]:
            by_attempt.setdefault(span["attrs"].get("attempt"), []).append(span)
        assert set(by_attempt) == {1, 2}
        # Attempt 1's spans came from the spool and are marked partial.
        killed = by_attempt[1][0]
        assert killed["attrs"]["partial"] is True
        assert killed["attrs"]["trace_id"] == job.trace_id
        # The kill landed inside the gated hold; the spool caught the span.
        held = [
            c for c in killed["children"] or [killed]
            if "gated-hold" in json.dumps(c)
        ] or ([killed] if "gated-hold" in json.dumps(killed) else [])
        assert held, "spooled spans lost the in-flight gated-hold span"
        # Attempt 2 is the complete compile.
        survivor = by_attempt[2][0]
        assert survivor["attrs"].get("partial") is not True

    def test_coalesced_submissions_record_their_trace_ids(self, tmp_path):
        gate = tmp_path / "gate"
        gate.write_text("hold\n")
        request = FlowRequest.make("matmul", config="orig")

        async def scenario(monkey_env):
            os.environ[GATE_ENV] = str(gate)
            try:
                service = _service(
                    tmp_path, workers=1, entry=_gated_compile_entry
                )
                await service.start()
                try:
                    from repro.obs.context import TraceContext

                    first = TraceContext.mint()
                    second = TraceContext.mint()
                    job, how1 = service.submit(request, trace=first)
                    job2, how2 = service.submit(request, trace=second)
                    assert job2 is job
                    assert (how1, how2) == ("queued", "coalesced")
                    assert job.trace_id == first.trace_id
                    gate.unlink()
                    await service.wait(job, timeout=180)
                    coalesced = job.span.attrs.get("coalesced_trace_ids")
                    assert coalesced == [second.trace_id]
                finally:
                    await service.stop()
            finally:
                os.environ.pop(GATE_ENV, None)

        asyncio.run(scenario(None))


class TestMetricsExposition:
    def test_metrics_parse_while_compile_in_flight(self, tmp_path, monkeypatch):
        """The acceptance criterion: scrape /metrics mid-compile and parse
        every line."""
        gate = tmp_path / "gate"
        gate.write_text("hold\n")
        monkeypatch.setenv(GATE_ENV, str(gate))
        service = _service(tmp_path, workers=1, entry=_gated_compile_entry)
        with serve_in_thread(service) as server:
            client = ServiceClient(port=server.port)
            record = client.submit("matmul", config="orig", wait=False)
            assert record["state"] in ("queued", "running")

            text = client.metrics()  # job is gated: this is mid-flight
            doc = parse_exposition(text)  # raises on any malformed line
            assert doc.value("repro_service_submitted_total") >= 1
            assert doc.value("repro_service_uptime_s") >= 0
            for lane in ("high", "normal", "low"):
                assert doc.value(
                    "repro_service_lane_queue_depth", (("lane", lane),)
                ) is not None

            gate.unlink()
            client.wait_job(record["id"], timeout=180)
            after = parse_exposition(client.metrics())
            assert after.value("repro_service_compiles_total") >= 1
            name = "repro_service_compile_latency_s"
            assert after.value(f"{name}_count") >= 1
            assert after.types[name] == "summary"

    def test_status_snapshot_mirrors_metrics(self, tmp_path):
        service = _service(tmp_path, workers=1)
        with serve_in_thread(service) as server:
            client = ServiceClient(port=server.port)
            before = parse_exposition(client.metrics())
            client.submit("matmul", config="orig", wait=True)
            snapshot = client.status()
            doc = parse_exposition(client.metrics())
        counters = snapshot["metrics"]["counters"]
        # /metrics is process-wide (it survives daemon restarts within one
        # process), so compare the delta against this daemon's snapshot.
        delta = doc.value("repro_service_compiles_total") - (
            before.value("repro_service_compiles_total") or 0
        )
        assert counters["service.compiles"] == delta == 1
        assert snapshot["uptime_s"] >= 0
        assert "journal" in snapshot and "traces" in snapshot


class TestEventJournal:
    def test_daemon_lifecycle_and_job_events(self, tmp_path):
        """The service's only log: every lifecycle transition is a record."""
        journal = EventJournal(tmp_path / "journal" / "events.jsonl",
                               source="daemon")
        service = _service(tmp_path, workers=1, journal=journal)
        with serve_in_thread(service) as server:
            client = ServiceClient(port=server.port)
            record = client.submit("matmul", config="orig", wait=True)
            again = client.submit("matmul", config="orig", wait=True)
            assert again["served_from"] == "store"

        events = [r["event"] for r in read_events(journal.path)]
        for expected in (
            "service.start", "http.listen", "job.accepted", "job.started",
            "worker.spawned", "worker.exit", "job.completed",
            "job.store_hit", "service.stop",
        ):
            assert expected in events, f"missing {expected} in {events}"
        # Order sanity: start first, stop last, accepted before completed.
        assert events[0] == "service.start"
        assert events[-1] == "service.stop"
        assert events.index("job.accepted") < events.index("job.completed")

        start = next(
            r for r in read_events(journal.path) if r["event"] == "service.start"
        )
        assert start["workers"] == 1 and start["source"] == "daemon"
        stop = next(
            r for r in read_events(journal.path) if r["event"] == "service.stop"
        )
        assert stop["uptime_s"] >= 0

        completed = next(
            r for r in read_events(journal.path)
            if r["event"] == "job.completed"
        )
        assert completed["trace_id"] == record["trace_id"]
        assert completed["served_from"] == "compile"

    def test_worker_stage_events_land_in_shared_journal(
        self, tmp_path, monkeypatch
    ):
        """Forked workers append to the daemon's journal: stage cache
        hit/miss records carry the worker pid and source."""
        # Private cache dir: the compile must be cold so misses are
        # guaranteed regardless of what earlier tests warmed.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        journal = EventJournal(tmp_path / "journal" / "events.jsonl",
                               source="daemon")
        service = _service(tmp_path, workers=1, journal=journal)
        with serve_in_thread(service) as server:
            client = ServiceClient(port=server.port)
            client.submit("matmul", config="orig", wait=True)

        stage_events = [
            r for r in read_events(journal.path)
            if r["event"] in ("stage.hit", "stage.miss")
        ]
        assert stage_events, "workers emitted no stage cache events"
        daemon_pid = next(
            r["pid"] for r in read_events(journal.path)
            if r["event"] == "service.start"
        )
        assert all(r["source"] == "worker" for r in stage_events)
        assert all(r["pid"] != daemon_pid for r in stage_events)
        assert any(r["event"] == "stage.miss" for r in stage_events)
        # A hit record names which cache tier served it, not the emitter.
        hits = [r for r in stage_events if r["event"] == "stage.hit"]
        assert all(r.get("cache") in ("memory", "disk") for r in hits)


class TestTraceSpoolFailureAccounting:
    """A spool that stops writing must say so (once), then report recovery.

    The old code swallowed every exception silently — a worker whose spool
    was broken from round one left zero forensics *and* zero evidence that
    forensics were missing.
    """

    def make_spool(self, tmp_path):
        from repro.service.traces import TraceSpool

        tracer = obs.Tracer()
        with obs.activate(tracer):
            with tracer.span("probe"):
                pass
        return TraceSpool(tracer, str(tmp_path / "spool.json"))

    def test_failure_streak_emits_one_event_then_recovery(
        self, tmp_path, monkeypatch
    ):
        from repro.obs.journal import activate_journal
        from repro.service import traces as traces_mod

        spool = self.make_spool(tmp_path)
        journal = EventJournal(tmp_path / "journal" / "events.jsonl",
                               source="worker")
        activate_journal(journal)
        try:
            def broken(path, tracer, meta):
                raise OSError("disk full")

            monkeypatch.setattr(traces_mod, "write_spool", broken)
            for _ in range(5):
                spool._write_once()
            assert spool.failures == 5
            monkeypatch.undo()
            spool._write_once()  # heals
            assert spool.failures == 0
        finally:
            activate_journal(None)

        events = read_events(journal.path)
        failed = [r for r in events if r["event"] == "trace.spool_write_failed"]
        recovered = [r for r in events if r["event"] == "trace.spool_recovered"]
        assert len(failed) == 1, "failure streak must emit exactly one event"
        assert "disk full" in failed[0]["error"]
        assert len(recovered) == 1
        assert recovered[0]["failures"] == 5
        assert os.path.exists(spool.path)  # the healed round really wrote

    def test_programming_errors_propagate(self, tmp_path, monkeypatch):
        from repro.service import traces as traces_mod

        spool = self.make_spool(tmp_path)

        def broken(path, tracer, meta):
            raise TypeError("snapshot_span signature changed")

        monkeypatch.setattr(traces_mod, "write_spool", broken)
        try:
            spool._write_once()
        except TypeError:
            pass
        else:  # pragma: no cover - the assertion below reports the bug
            raise AssertionError("TypeError must not be swallowed")
        assert spool.failures == 0  # not a counted transient failure
