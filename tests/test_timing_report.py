"""Tests for timing report emit/parse (repro.physical.timing_report)."""

import pytest

from repro.errors import PhysicalError
from repro.opt import BASELINE
from repro.physical.timing_report import emit_timing_report, parse_timing_report


@pytest.fixture(scope="module")
def timing(module_flow):
    from conftest import make_mini_stream_design

    return module_flow.run(make_mini_stream_design(depth=1 << 16), BASELINE).timing


@pytest.fixture(scope="module")
def module_flow():
    from conftest import make_synthetic_table
    from repro.flow import Flow

    return Flow(calibration=make_synthetic_table())


class TestEmit:
    def test_header_and_fmax(self, timing):
        text = emit_timing_report(timing, design="mini")
        assert "== Timing Report: mini ==" in text
        assert f"fmax {timing.fmax_mhz:.1f} MHz" in text

    def test_hops_listed(self, timing):
        text = emit_timing_report(timing)
        assert text.count("incr ") == len(timing.critical_path)

    def test_slack_met(self, timing):
        text = emit_timing_report(timing, requirement_ns=timing.raw_period_ns + 1)
        assert "MET" in text

    def test_slack_violated(self, timing):
        text = emit_timing_report(timing, requirement_ns=timing.raw_period_ns - 1)
        assert "VIOLATED" in text

    def test_class_summary_sorted(self, timing):
        text = emit_timing_report(timing)
        idx = text.index("Class Summary:")
        rows = [l.split()[0] for l in text[idx:].splitlines()[1:] if l.strip() and not l.startswith("Slack")]
        assert rows == sorted(rows)


class TestRoundTrip:
    def test_core_fields(self, timing):
        back = parse_timing_report(emit_timing_report(timing, design="x"))
        assert back.raw_period_ns == pytest.approx(timing.raw_period_ns, abs=1e-3)
        assert back.fmax_mhz == pytest.approx(timing.fmax_mhz, abs=0.5)
        assert back.path_class is timing.path_class
        assert back.startpoint == timing.startpoint
        assert back.endpoint == timing.endpoint

    def test_hops_roundtrip(self, timing):
        back = parse_timing_report(emit_timing_report(timing))
        assert len(back.critical_path) == len(timing.critical_path)
        for a, b in zip(back.critical_path, timing.critical_path):
            assert a.cell == b.cell and a.net == b.net
            assert a.incr_ns == pytest.approx(b.incr_ns, abs=1e-3)

    def test_class_summary_roundtrip(self, timing):
        back = parse_timing_report(emit_timing_report(timing))
        for key, value in timing.class_periods.items():
            assert back.class_periods[key] == pytest.approx(value, abs=1e-3)


class TestParseErrors:
    def test_garbage_rejected(self):
        with pytest.raises(PhysicalError):
            parse_timing_report("hello world")

    def test_missing_delay_rejected(self):
        with pytest.raises(PhysicalError):
            parse_timing_report("== Timing Report: x ==\nPath Class: data\n")
