"""Tests for resource reports, error hierarchy, and opt configs."""

import pytest

from repro import errors
from repro.opt import BASELINE, CTRL_ONLY, DATA_ONLY, FULL, SKID_NAIVE
from repro.control.styles import ControlStyle
from repro.rtl.netlist import CellKind, Netlist
from repro.rtl.resources import ResourceReport


class TestResourceReport:
    def test_of_netlist(self):
        nl = Netlist("n")
        nl.new_cell("a", CellKind.LOGIC, luts=100, ffs=50)
        nl.new_cell("b", CellKind.BRAM, brams=2)
        report = ResourceReport.of_netlist(nl)
        assert (report.luts, report.ffs, report.brams, report.dsps) == (100, 50, 2, 0)

    def test_addition(self):
        a = ResourceReport(1, 2, 3, 4)
        b = ResourceReport(10, 20, 30, 40)
        total = a + b
        assert (total.luts, total.ffs, total.brams, total.dsps) == (11, 22, 33, 44)

    def test_utilization(self):
        report = ResourceReport(luts=118_224, ffs=0, brams=216, dsps=684)
        util = report.utilization("aws-f1")
        assert util["LUT"] == pytest.approx(10.0)
        assert util["BRAM"] == pytest.approx(10.0)
        assert util["DSP"] == pytest.approx(10.0)

    def test_utilization_row_format(self):
        row = ResourceReport(0, 0, 0, 0).utilization_row("aws-f1")
        assert "LUT=0.0%" in row and "DSP=0.0%" in row


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, errors.ReproError), name

    def test_fifo_errors_are_simulation_errors(self):
        assert issubclass(errors.FifoOverflowError, errors.SimulationError)
        assert issubclass(errors.FifoUnderflowError, errors.SimulationError)

    def test_dynamic_latency_is_sync_error(self):
        assert issubclass(errors.DynamicLatencyError, errors.SyncPruningError)

    def test_placement_is_physical(self):
        assert issubclass(errors.PlacementError, errors.PhysicalError)

    def test_catchable_at_flow_boundary(self):
        try:
            raise errors.UnschedulableError("x")
        except errors.ReproError:
            pass


class TestOptConfigs:
    def test_presets_immutable(self):
        with pytest.raises(Exception):
            FULL.broadcast_aware = False  # type: ignore[misc]

    def test_preset_contents(self):
        assert not BASELINE.broadcast_aware and BASELINE.control is ControlStyle.STALL
        assert DATA_ONLY.broadcast_aware and not DATA_ONLY.sync_pruning
        assert CTRL_ONLY.sync_pruning and not CTRL_ONLY.broadcast_aware
        assert FULL.broadcast_aware and FULL.sync_pruning and FULL.control.uses_skid
        assert SKID_NAIVE.control is ControlStyle.SKID

    def test_labels_distinct(self):
        labels = {c.label for c in (BASELINE, DATA_ONLY, CTRL_ONLY, FULL, SKID_NAIVE)}
        assert len(labels) == 5

    def test_uses_skid_property(self):
        assert ControlStyle.SKID.uses_skid
        assert ControlStyle.SKID_MINAREA.uses_skid
        assert not ControlStyle.STALL.uses_skid
