"""Tests for the run-everything summary driver (repro.experiments.summary)."""

from repro.experiments.summary import EXPERIMENTS, SummaryReport, run_all


class TestRegistry:
    def test_all_eight_experiments_listed(self):
        names = [name for name, _r, _f in EXPERIMENTS]
        assert names == [
            "fig9",
            "table1",
            "fig15",
            "fig16",
            "fig17",
            "table2",
            "fig19",
            "table3",
        ]

    def test_runner_formatter_pairing(self):
        for name, runner, formatter in EXPERIMENTS:
            assert runner.__name__ == f"run_{name}"
            assert formatter.__name__ == f"format_{name}"


class TestRunAll:
    def test_single_selection(self, capsys):
        report = run_all(only=["fig17"], echo=True)
        assert list(report.sections) == ["fig17"]
        assert "waist" in report.sections["fig17"]
        assert report.seconds["fig17"] >= 0
        assert "fig17 done" in capsys.readouterr().out

    def test_render_structure(self):
        report = SummaryReport(
            sections={"fig17": "body text"}, seconds={"fig17": 1.5}
        )
        text = report.render()
        assert text.startswith("# Reproduction summary")
        assert "## fig17" in text
        assert "total wall clock" in text
