"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main
from repro.delay.cache import save_calibration
from repro.testing import synthetic_calibration


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "genome" in out and "pattern_matching" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_design_rejected(self, capsys):
        # argparse `choices` rejects it: usage error (2) naming the designs
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "nonexistent"])
        assert excinfo.value.code == 2
        assert "matmul" in capsys.readouterr().err

    def test_unknown_config_exits_2_with_choices(self, capsys):
        assert main(["run", "matmul", "--config", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        assert "valid configs" in err and "full" in err

    def test_empty_config_exits_2(self, capsys):
        assert main(["run", "matmul", "--config", " , "]) == 2
        assert "valid configs" in capsys.readouterr().err

    def test_fig17_experiment(self, capsys):
        assert main(["fig17"]) == 0
        out = capsys.readouterr().out
        assert "waist" in out

    def test_verilog_command(self, tmp_path, capsys):
        out_file = tmp_path / "d.v"
        assert main(["verilog", "face_detection", str(out_file), "--config", "orig"]) == 0
        assert out_file.exists()
        assert "REPRO_FF" in out_file.read_text()

    def test_diagnose_command(self, capsys):
        assert main(["diagnose", "face_detection"]) == 0
        out = capsys.readouterr().out
        assert "broadcast" in out
        assert "Critical path" in out

    def test_run_verbose_prints_span_tree(self, capsys):
        assert main(["run", "vector_arith", "--config", "orig", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "Fmax=" in out
        # the --verbose view appends the observability span tree
        assert "placement" in out and "rtl-gen" in out

    def test_run_json_and_trace_out_compose(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        assert main(
            ["run", "vector_arith", "--config", "orig",
             "--json", "--trace-out", str(trace_path)]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["runs"][0]["counters"]
        assert trace_path.exists()


class TestCliEngine:
    """--jobs and --calibration, the engine/cache flags of the CLI."""

    def test_jobs_parallel_run_json(self, capsys):
        # Two calibration-free configs fanned over two worker processes;
        # the report must keep submission order and full enrichment.
        assert main(
            ["run", "matmul", "--config", "orig,skid", "--jobs", "2", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert [run["config"] for run in report["runs"]] == ["orig", "skid"]
        assert all("utilization" in run for run in report["runs"])

    def test_calibration_flag_uses_saved_table(self, tmp_path, capsys):
        path = tmp_path / "cal.json"
        save_calibration(
            synthetic_calibration(), str(path),
            device="aws-f1", seed=2020, smooth_passes=1,
        )
        assert main(
            ["run", "matmul", "--config", "full",
             "--calibration", str(path), "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        (run,) = report["runs"]
        (calibration,) = [s for s in run["stages"] if s["name"] == "calibration"]
        assert calibration["attrs"]["cached"] is True
        assert calibration["attrs"]["source"] == "disk"

    def test_calibration_provenance_mismatch_exits_1(self, tmp_path, capsys):
        path = tmp_path / "cal.json"
        save_calibration(
            synthetic_calibration(), str(path),
            device="aws-f1", seed=999, smooth_passes=1,
        )
        assert main(
            ["run", "matmul", "--config", "full", "--calibration", str(path)]
        ) == 1
        err = capsys.readouterr().err
        assert "repro: error" in err and "seed" in err


class TestCliBatchFailures:
    """Batch commands report every completed job and exit nonzero when any
    job failed (the engine's collect_errors path)."""

    @staticmethod
    def _mismatched_calibration(tmp_path) -> str:
        path = tmp_path / "cal.json"
        save_calibration(
            synthetic_calibration(), str(path),
            device="aws-f1", seed=999, smooth_passes=1,
        )
        return str(path)

    def test_run_partial_failure_keeps_good_results(self, tmp_path, capsys):
        # 'orig' is calibration-free and succeeds; 'full' needs the
        # calibration and hits the seed-mismatch error.
        path = self._mismatched_calibration(tmp_path)
        assert main(
            ["run", "matmul", "--config", "orig,full", "--calibration", path]
        ) == 1
        captured = capsys.readouterr()
        assert "Fmax=" in captured.out  # orig still reported
        assert "repro: error" in captured.err
        assert "does not match the requested provenance" in captured.err

    def test_run_partial_failure_json_report(self, tmp_path, capsys):
        path = self._mismatched_calibration(tmp_path)
        assert main(
            ["run", "matmul", "--config", "orig,full",
             "--calibration", path, "--json"]
        ) == 1
        report = json.loads(capsys.readouterr().out)
        # The aborted run leaves a bare span record; only 'orig' completed
        # with full result enrichment.
        enriched = [r["config"] for r in report["runs"] if "utilization" in r]
        assert enriched == ["orig"]
        (failure,) = report["failures"]
        assert failure["tag"] == "full"
        assert failure["error_type"] == "ReproError"

    def test_run_parallel_partial_failure(self, tmp_path, capsys):
        path = self._mismatched_calibration(tmp_path)
        assert main(
            ["run", "matmul", "--config", "orig,full",
             "--calibration", path, "--jobs", "2", "--json"]
        ) == 1
        report = json.loads(capsys.readouterr().out)
        enriched = [r["config"] for r in report["runs"] if "utilization" in r]
        assert enriched == ["orig"]
        assert len(report["failures"]) == 1

    def test_all_propagates_experiment_failure(self, monkeypatch, capsys):
        from repro.errors import ReproError
        from repro.experiments import summary as summary_mod

        def ok_runner(engine=None):
            return "fine"

        def bad_runner(engine=None):
            raise ReproError("synthetic experiment breakage")

        monkeypatch.setattr(
            summary_mod, "EXPERIMENTS",
            (
                ("good_exp", ok_runner, lambda r: f"rendered {r}"),
                ("bad_exp", bad_runner, lambda r: r),
            ),
        )
        assert main(["all"]) == 1
        captured = capsys.readouterr()
        assert "rendered fine" in captured.out  # good section survives
        assert "FAILED" in captured.out and "bad_exp" in captured.out
        assert "synthetic experiment breakage" in captured.err


class TestCliService:
    """Argument wiring of serve/submit/status (live daemon paths are
    covered in test_service_http.py)."""

    def test_submit_unreachable_daemon_exits_3(self, capsys):
        # Exit 3 = "try later" (same as backpressure): the daemon being
        # down is transient, not a caller error.
        assert main(["submit", "matmul", "--port", "1"]) == 3
        assert "cannot reach" in capsys.readouterr().err

    def test_status_unreachable_daemon_exits_3(self, capsys):
        assert main(["status", "--port", "1"]) == 3
        assert "cannot reach" in capsys.readouterr().err

    def test_submit_rejects_unknown_config(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["submit", "matmul", "--config", "bogus"])
        assert excinfo.value.code == 2

    def test_submit_backpressure_exits_3(self, tmp_path, capsys):
        from repro.service import ResultStore, serve_in_thread

        with serve_in_thread(
            store=ResultStore(str(tmp_path / "results")),
            quarantine_dir=str(tmp_path / "quarantine"),
            workers=1,
            queue_limit=0,
        ) as server:
            assert main(
                ["submit", "matmul", "--port", str(server.port)]
            ) == 3
            assert "busy" in capsys.readouterr().err

    def test_submit_and_status_against_live_daemon(self, tmp_path, capsys):
        from repro.service import ResultStore, serve_in_thread

        with serve_in_thread(
            store=ResultStore(str(tmp_path / "results")),
            quarantine_dir=str(tmp_path / "quarantine"),
            workers=1,
        ) as server:
            port = str(server.port)
            assert main(
                ["submit", "matmul", "--config", "orig", "--wait",
                 "--json", "--port", port]
            ) == 0
            record = json.loads(capsys.readouterr().out)
            assert record["state"] == "done"
            assert record["served_from"] == "compile"

            assert main(["status", "--port", port]) == 0
            out = capsys.readouterr().out
            assert "compiles       1" in out
            assert "uptime" in out
            assert record["id"] in out
            # the trace id column lets `repro trace --request` follow up
            assert record["trace_id"] in out

            assert main(["status", "--json", "--port", port]) == 0
            snapshot = json.loads(capsys.readouterr().out)
            assert snapshot["metrics"]["counters"]["service.compiles"] == 1

            assert main(["status", record["id"], "--port", port]) == 0
            fetched = json.loads(capsys.readouterr().out)
            assert fetched["digest"] == record["digest"]
