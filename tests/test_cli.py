"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main
from repro.delay.cache import save_calibration
from repro.testing import synthetic_calibration


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "genome" in out and "pattern_matching" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_design_rejected(self, capsys):
        # argparse `choices` rejects it: usage error (2) naming the designs
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "nonexistent"])
        assert excinfo.value.code == 2
        assert "matmul" in capsys.readouterr().err

    def test_unknown_config_exits_2_with_choices(self, capsys):
        assert main(["run", "matmul", "--config", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        assert "valid configs" in err and "full" in err

    def test_empty_config_exits_2(self, capsys):
        assert main(["run", "matmul", "--config", " , "]) == 2
        assert "valid configs" in capsys.readouterr().err

    def test_fig17_experiment(self, capsys):
        assert main(["fig17"]) == 0
        out = capsys.readouterr().out
        assert "waist" in out

    def test_verilog_command(self, tmp_path, capsys):
        out_file = tmp_path / "d.v"
        assert main(["verilog", "face_detection", str(out_file), "--config", "orig"]) == 0
        assert out_file.exists()
        assert "REPRO_FF" in out_file.read_text()

    def test_diagnose_command(self, capsys):
        assert main(["diagnose", "face_detection"]) == 0
        out = capsys.readouterr().out
        assert "broadcast" in out
        assert "Critical path" in out

    def test_run_verbose_prints_span_tree(self, capsys):
        assert main(["run", "vector_arith", "--config", "orig", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "Fmax=" in out
        # the --verbose view appends the observability span tree
        assert "placement" in out and "rtl-gen" in out

    def test_run_json_and_trace_out_compose(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        assert main(
            ["run", "vector_arith", "--config", "orig",
             "--json", "--trace-out", str(trace_path)]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["runs"][0]["counters"]
        assert trace_path.exists()


class TestCliEngine:
    """--jobs and --calibration, the engine/cache flags of the CLI."""

    def test_jobs_parallel_run_json(self, capsys):
        # Two calibration-free configs fanned over two worker processes;
        # the report must keep submission order and full enrichment.
        assert main(
            ["run", "matmul", "--config", "orig,skid", "--jobs", "2", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert [run["config"] for run in report["runs"]] == ["orig", "skid"]
        assert all("utilization" in run for run in report["runs"])

    def test_calibration_flag_uses_saved_table(self, tmp_path, capsys):
        path = tmp_path / "cal.json"
        save_calibration(
            synthetic_calibration(), str(path),
            device="aws-f1", seed=2020, smooth_passes=1,
        )
        assert main(
            ["run", "matmul", "--config", "full",
             "--calibration", str(path), "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        (run,) = report["runs"]
        (scheduling,) = [s for s in run["stages"] if s["name"] == "scheduling"]
        (calibration,) = [
            s for s in scheduling["children"] if s["name"] == "calibration"
        ]
        assert calibration["attrs"]["cached"] is True
        assert calibration["attrs"]["source"] == "disk"

    def test_calibration_provenance_mismatch_exits_1(self, tmp_path, capsys):
        path = tmp_path / "cal.json"
        save_calibration(
            synthetic_calibration(), str(path),
            device="aws-f1", seed=999, smooth_passes=1,
        )
        assert main(
            ["run", "matmul", "--config", "full", "--calibration", str(path)]
        ) == 1
        err = capsys.readouterr().err
        assert "repro: error" in err and "seed" in err
