"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "genome" in out and "pattern_matching" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nonexistent"])

    def test_fig17_experiment(self, capsys):
        assert main(["fig17"]) == 0
        out = capsys.readouterr().out
        assert "waist" in out

    def test_verilog_command(self, tmp_path, capsys):
        out_file = tmp_path / "d.v"
        assert main(["verilog", "face_detection", str(out_file), "--config", "orig"]) == 0
        assert out_file.exists()
        assert "REPRO_FF" in out_file.read_text()

    def test_diagnose_command(self, capsys):
        assert main(["diagnose", "face_detection"]) == 0
        out = capsys.readouterr().out
        assert "broadcast" in out
        assert "Critical path" in out

    def test_run_verbose_prints_span_tree(self, capsys):
        assert main(["run", "vector_arith", "--config", "orig", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "Fmax=" in out
        # the --verbose view appends the observability span tree
        assert "placement" in out and "rtl-gen" in out

    def test_run_json_and_trace_out_compose(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        assert main(
            ["run", "vector_arith", "--config", "orig",
             "--json", "--trace-out", str(trace_path)]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["runs"][0]["counters"]
        assert trace_path.exists()
