"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "genome" in out and "pattern_matching" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nonexistent"])

    def test_fig17_experiment(self, capsys):
        assert main(["fig17"]) == 0
        out = capsys.readouterr().out
        assert "waist" in out

    def test_verilog_command(self, tmp_path, capsys):
        out_file = tmp_path / "d.v"
        assert main(["verilog", "face_detection", str(out_file), "--config", "orig"]) == 0
        assert out_file.exists()
        assert "REPRO_FF" in out_file.read_text()

    def test_diagnose_command(self, capsys):
        assert main(["diagnose", "face_detection"]) == 0
        out = capsys.readouterr().out
        assert "broadcast" in out
        assert "Critical path" in out
