"""Equivalence proof: incremental recompilation can never change an answer.

For every registered design × {BASELINE, FULL} × perturbation, a warm
incremental flow (seeded by a prior run at the original operating point)
must produce bit-identical fingerprints and result digests to a fresh
flow compiling the perturbed point from scratch with every reuse path
disabled.  The perturbations are the three single-knob sweep moves the
incremental machinery is built for:

* **clock-bump** — same design, new clock target (per-loop scheduling
  memos miss on clock, everything upstream of scheduling is overlay-skipped);
* **pragma-flip** — one loop's pipeline pragma toggled (damage cone:
  only the affected loop re-schedules / re-emits);
* **calibration-swap** — a perturbed calibration table injected
  (scheduling and downstream re-run; pragma/sync-pruning are skipped).
"""

from __future__ import annotations

import pytest

from repro.designs import build_design, design_names
from repro.flow import Flow
from repro.opt import BASELINE, FULL

CONFIGS = {"orig": BASELINE, "full": FULL}
SCENARIOS = ("clock-bump", "pragma-flip", "calibration-swap")

#: Off every design's default operating point (registry designs pin 300 or
#: 333 MHz in their meta) — a bump to a design's own default is a no-op
#: the incremental machinery would rightly skip end-to-end.
BUMPED_CLOCK_MHZ = 217


def _flip_pragma(design):
    """Toggle the pipeline pragma of the design's first loop."""
    loop = design.kernels[0].loops[0]
    loop.pipeline = not loop.pipeline
    return design


def _perturbed_table(table):
    """A copy-by-reconstruction of ``table`` with one extra curve point."""
    from repro.delay.calibrated import CalibrationTable

    other = CalibrationTable()
    for key in table.keys():
        for factor, delay in table.points(key):
            other.add(key, factor, delay)
    key = table.keys()[0]
    factor, delay = table.points(key)[-1]
    other.add(key, factor * 2, delay * 1.5)
    return other


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("config_key", sorted(CONFIGS))
@pytest.mark.parametrize("design_name", design_names())
def test_incremental_matches_scratch(
    design_name, config_key, scenario, synthetic_table
):
    config = CONFIGS[config_key]
    inc = Flow(
        calibration=synthetic_table, stage_cache=False, incremental=True
    )
    inc.run(build_design(design_name), config)  # seed memos + overlay

    scratch_kwargs = dict(
        calibration=synthetic_table, stage_cache=False, incremental=False
    )
    perturb = lambda design: design  # noqa: E731 — per-scenario hook
    if scenario == "clock-bump":
        inc.clock_mhz = BUMPED_CLOCK_MHZ
        scratch_kwargs["clock_mhz"] = BUMPED_CLOCK_MHZ
    elif scenario == "pragma-flip":
        perturb = _flip_pragma
    else:
        table = _perturbed_table(synthetic_table)
        inc.calibration = table
        scratch_kwargs["calibration"] = table

    warm = inc.run(perturb(build_design(design_name)), config)
    scratch = Flow(**scratch_kwargs).run(
        perturb(build_design(design_name)), config
    )

    assert warm.fingerprint() == scratch.fingerprint()
    assert warm.result_digest() == scratch.result_digest()


def test_incremental_reuse_actually_happens(synthetic_table):
    """The pragma-flip path must ride the memos, not silently recompile.

    Guards the equivalence suite against vacuity: if a digest-key change
    made every memo miss, the tests above would still pass (both sides
    compile from scratch) while the optimization is silently dead.  A
    single-pragma flip leaves the untouched loop inside the damage cone's
    complement: its schedule and RTL replay from the per-loop memos and
    the placement trajectory prefix is reused.
    """
    from repro import obs

    inc = Flow(
        calibration=synthetic_table, stage_cache=False, incremental=True
    )
    inc.run(build_design("genome"), FULL)
    tracer = obs.Tracer()
    with obs.activate(tracer):
        inc.run(_flip_pragma(build_design("genome")), FULL)
    metrics = tracer.roots[0].aggregate_metrics()
    assert metrics.counter("incremental.sched_hits") > 0
    assert metrics.counter("incremental.rtl_hits") > 0
    assert metrics.counter("placement.trajectory_steps_reused") > 0


def test_clock_bump_skips_upstream_of_scheduling(synthetic_table):
    """A clock-only change re-runs scheduling but skips everything above.

    Pragma lowering and synchronization pruning do not read the clock;
    their overlay entries must be byte-identical and serve the bumped run.
    """
    inc = Flow(
        calibration=synthetic_table, stage_cache=False, incremental=True
    )
    inc.run(build_design("genome"), FULL)
    inc.clock_mhz = BUMPED_CLOCK_MHZ
    result = inc.run(build_design("genome"), FULL)
    actions = {e["stage"]: e["action"] for e in result.journal}
    assert actions["pragmas"] == "skipped"
    assert actions["sync-pruning"] == "skipped"
    assert actions["scheduling"] == "run"
    assert actions["timing"] == "run"


def test_identical_rerun_skips_via_overlay(synthetic_table):
    """A byte-identical re-run skips every cacheable stage from the overlay."""
    inc = Flow(
        calibration=synthetic_table, stage_cache=False, incremental=True
    )
    first = inc.run(build_design("genome"), FULL)
    second = inc.run(build_design("genome"), FULL)
    assert second.fingerprint() == first.fingerprint()
    skipped = [e for e in second.journal if e["action"] == "skipped"]
    assert skipped, "overlay produced no skips on an identical re-run"
    assert all(e["source"] == "overlay" for e in skipped)
