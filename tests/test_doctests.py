"""Run the doctests embedded in module/class docstrings."""

import doctest

import pytest

import repro.delay.tables
import repro.ir.builder
import repro.ir.types


@pytest.mark.parametrize(
    "module",
    [repro.ir.types, repro.ir.builder, repro.delay.tables],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0, f"{module.__name__} has no doctests to run"
