"""Tests for the chaining scheduler (repro.scheduling.chaining)."""

import pytest

from repro.delay.hls_model import HlsDelayModel
from repro.delay.tables import hls_predicted_delay
from repro.errors import SchedulingError
from repro.ir.builder import DFGBuilder
from repro.ir.ops import Opcode
from repro.ir.program import Buffer, Fifo
from repro.ir.types import f32, i32
from repro.scheduling.chaining import (
    CLOCK_MARGIN_NS,
    ChainingScheduler,
    effective_delay,
    effective_latency,
)

ADD = hls_predicted_delay(Opcode.ADD, i32)


def schedule(dfg, clock_ns=3.0, model=None):
    return ChainingScheduler(model or HlsDelayModel(), clock_ns).schedule(dfg)


class TestChaining:
    def test_short_chain_fits_one_cycle(self):
        b = DFGBuilder()
        x, y = b.input("x", i32), b.input("y", i32)
        s = b.add(x, y)
        d = b.sub(s, y)
        sched = schedule(b.build())
        assert sched.depth == 1
        assert sched.entry(d.producer).cycle == 0

    def test_chain_end_times_accumulate(self):
        b = DFGBuilder()
        x, y = b.input("x", i32), b.input("y", i32)
        s = b.add(x, y)
        d = b.sub(s, y)
        sched = schedule(b.build())
        assert sched.entry(s.producer).end_ns == pytest.approx(ADD)
        assert sched.entry(d.producer).end_ns == pytest.approx(2 * ADD, abs=0.01)

    def test_long_chain_splits(self):
        b = DFGBuilder()
        v = b.input("x", i32)
        for i in range(12):
            v = b.add(v, v, name=f"a{i}")
        sched = schedule(b.build(), clock_ns=2.0)
        assert sched.depth >= 2
        budget = 2.0 - CLOCK_MARGIN_NS
        for c in range(sched.depth):
            assert sched.critical_arrival(c) <= budget + 1e-9

    def test_new_cycle_starts_at_zero(self):
        b = DFGBuilder()
        v = b.input("x", i32)
        for i in range(12):
            v = b.add(v, v, name=f"a{i}")
        sched = schedule(b.build(), clock_ns=2.0)
        by_cycle = {}
        for entry in sched.entries.values():
            by_cycle.setdefault(entry.cycle, []).append(entry)
        for entries in by_cycle.values():
            assert min(e.start_ns for e in entries) == pytest.approx(0.0)

    def test_parallel_ops_share_cycle(self):
        b = DFGBuilder()
        x, y = b.input("x", i32), b.input("y", i32)
        for _ in range(20):
            b.add(x, y)
        sched = schedule(b.build())
        assert sched.depth == 1  # independent ops chain nothing

    def test_too_small_clock_rejected(self):
        with pytest.raises(SchedulingError):
            ChainingScheduler(HlsDelayModel(), CLOCK_MARGIN_NS / 2)


class TestSequentialOps:
    def test_load_delivers_next_cycle(self):
        buf = Buffer("m", i32, 64)
        b = DFGBuilder()
        addr = b.input("a", i32)
        data = b.load(buf, addr)
        out = b.add(data, data)
        sched = schedule(b.build(), clock_ns=4.0)
        load_entry = sched.entry(data.producer)
        assert load_entry.finish_cycle == load_entry.cycle + 1
        assert sched.entry(out.producer).cycle == load_entry.finish_cycle

    def test_load_consumers_chain_after_read_delay(self):
        buf = Buffer("m", i32, 64)
        b = DFGBuilder()
        addr = b.input("a", i32)
        data = b.load(buf, addr)
        out = b.add(data, data)
        sched = schedule(b.build(), clock_ns=4.0)
        assert sched.entry(out.producer).start_ns >= hls_predicted_delay(
            Opcode.LOAD, i32
        ) - 1e-9

    def test_load_consumer_spills_when_read_delay_fills_cycle(self):
        buf = Buffer("m", i32, 64)
        b = DFGBuilder()
        addr = b.input("a", i32)
        data = b.load(buf, addr)
        out = b.add(data, data)
        sched = schedule(b.build(), clock_ns=3.0)  # 2.1 + 0.78 > 2.7 budget
        load_entry = sched.entry(data.producer)
        assert sched.entry(out.producer).cycle == load_entry.finish_cycle + 1

    def test_reg_takes_one_cycle(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        r = b.reg(x)
        out = b.add(r, r)
        sched = schedule(b.build())
        assert sched.entry(out.producer).cycle == 1

    def test_call_latency_respected(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        call = b.call("pe", [x], i32, latency=5)
        out = b.add(call.result, call.result)
        sched = schedule(b.build())
        assert sched.entry(out.producer).cycle == 5

    def test_chained_calls_accumulate(self):
        b = DFGBuilder()
        v = b.input("x", i32)
        for i in range(3):
            v = b.call(f"pe{i}", [v], i32, latency=4).result
        sched = schedule(b.build())
        assert sched.depth == 12 + 1 or sched.depth == 12  # 3 x latency 4


class TestExtraLatency:
    def test_effective_delay_divides(self):
        b = DFGBuilder()
        x = b.input("x", f32)
        m = b.mul(x, x).producer
        m.attrs["extra_latency"] = 3
        assert effective_delay(m, 4.0) == pytest.approx(1.0)
        assert effective_latency(m) == 3

    def test_auto_pipelines_oversized_fmul(self):
        b = DFGBuilder()
        x = b.input("x", f32)
        m = b.mul(x, x, name="m")
        sched = schedule(b.build(), clock_ns=2.0)
        # hls fmul 3.25 > budget 1.7 -> auto extra stages stamped
        assert int(m.producer.attrs.get("extra_latency", 0)) >= 1
        assert not sched.violations

    def test_never_reduces_design_request(self):
        b = DFGBuilder()
        x = b.input("x", f32)
        m = b.mul(x, x)
        m.producer.attrs["extra_latency"] = 6
        schedule(b.build(), clock_ns=3.0)
        assert m.producer.attrs["extra_latency"] == 6

    def test_plain_add_not_auto_pipelined(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        a = b.add(x, x)
        schedule(b.build(), clock_ns=3.0)
        assert "extra_latency" not in a.producer.attrs


class TestMinCycle:
    def test_min_cycle_delays_issue(self):
        fifo = Fifo("c", f32)
        b = DFGBuilder()
        r = b.fifo_read(fifo)
        r.producer.attrs["min_cycle"] = 9
        sched = schedule(b.build())
        assert sched.entry(r.producer).cycle == 9


class TestViolations:
    def test_unpipelineable_oversize_records_violation(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        v = b.shl(x, x)  # dynamic shift, not in the pipelineable set
        sched = schedule(b.build(), clock_ns=0.6)
        assert sched.has_violations()
        assert "exceeds budget" in str(sched.violations[0])


class TestStageWidths:
    def test_value_crossing_counts(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        r = b.reg(x)  # x -> reg crosses boundary 0 inside the REG
        b.add(r, r)
        sched = schedule(b.build())
        assert sched.stage_width(0) >= 32

    def test_call_stage_width_attr(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        call = b.call("pe", [x], i32, latency=4)
        call.attrs["stage_width"] = 100
        b.add(call.result, call.result)
        sched = schedule(b.build())
        for boundary in range(0, 4):
            assert sched.stage_width(boundary) >= 100

    def test_live_out_held_to_end(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        y = b.reg(b.reg(x))  # live-out produced at cycle 2
        sched = schedule(b.build())
        assert sched.stage_width(sched.depth - 1) >= 0
        assert y.type.bits == 32
