"""Tests for broadcast classification and diagnosis (repro.analysis)."""

from repro.analysis import classify_design, classify_netlist, diagnose
from repro.analysis.broadcast import BroadcastRecord, BroadcastReport
from repro.ir.builder import DFGBuilder
from repro.ir.program import Buffer, Design, Fifo, Kernel, Loop
from repro.ir.types import i32
from repro.rtl.netlist import CellKind, Netlist, NetKind


class TestReportContainer:
    def test_of_kind_and_sorted(self):
        report = BroadcastReport(
            records=[
                BroadcastRecord("data", "k/l", "a", 8),
                BroadcastRecord("sync", "k/l", "b", 64),
                BroadcastRecord("data", "k/l", "c", 32),
            ]
        )
        assert len(report.of_kind("data")) == 2
        assert report.sorted()[0].fanout == 64
        assert report.kinds == ["data", "sync"]

    def test_summary_lines(self):
        report = BroadcastReport(records=[BroadcastRecord("data", "k", "x", 9)])
        assert "fanout=9" in report.summary()


class TestClassifyDesign:
    def test_unrolled_invariant_flagged(self, unrolled_design):
        report = classify_design(unrolled_design)
        data = report.of_kind("data")
        assert data
        assert any(r.note == "loop-invariant" for r in data)

    def test_big_buffer_flagged(self):
        design = Design("m")
        buf = design.add_buffer(Buffer("big", i32, 1 << 18))
        b = DFGBuilder("body")
        b.store(buf, b.input("a", i32), b.input("d", i32))
        k = design.add_kernel(Kernel("k"))
        k.add_loop(Loop("l", b.build(), pipeline=True, trip_count=8))
        report = classify_design(design)
        mem = report.of_kind("memory")
        assert mem and mem[0].fanout == buf.bram36_units()

    def test_parallel_calls_flagged(self):
        design = Design("farm")
        b = DFGBuilder("body")
        seed = b.input("s", i32)
        for i in range(5):
            b.call(f"pe{i}", [seed], i32, latency=3)
        k = design.add_kernel(Kernel("k"))
        k.add_loop(Loop("l", b.build(), trip_count=4))
        report = classify_design(design)
        sync = report.of_kind("sync")
        assert sync and sync[0].fanout == 5

    def test_small_design_clean(self):
        design = Design("tiny")
        b = DFGBuilder("body")
        x = b.input("x", i32)
        b.add(x, b.const(1, i32))
        k = design.add_kernel(Kernel("k"))
        k.add_loop(Loop("l", b.build(), trip_count=4))
        assert classify_design(design).records == []


class TestClassifyNetlist:
    def test_enable_net_classified(self):
        nl = Netlist("n")
        gate = nl.new_cell("g", CellKind.LOGIC, delay_ns=0.3)
        sinks = [
            (nl.new_cell(f"r{i}", CellKind.FF, ffs=1, delay_ns=0.1), "ce")
            for i in range(32)
        ]
        nl.connect("enable", gate, sinks, kind=NetKind.ENABLE)
        report = classify_netlist(nl)
        assert report.of_kind("pipeline-control")

    def test_threshold_respected(self):
        nl = Netlist("n")
        src = nl.new_cell("s", CellKind.FF, ffs=1, delay_ns=0.1)
        sinks = [
            (nl.new_cell(f"r{i}", CellKind.FF, ffs=1, delay_ns=0.1), "d")
            for i in range(4)
        ]
        nl.connect("d", src, sinks, kind=NetKind.DATA)
        assert classify_netlist(nl, threshold=8).records == []
        assert classify_netlist(nl, threshold=2).records


class TestDiagnose:
    def test_every_class_has_advice(self, flow):
        from conftest import make_mini_stream_design

        result = flow.run(make_mini_stream_design(depth=1 << 18))
        advice = diagnose(result.timing)
        joined = "\n".join(advice)
        # the big-buffer design should surface memory advice
        assert "§4.1" in joined or "§4.3" in joined
