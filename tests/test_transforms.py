"""Tests for the transform pass library (repro.ir.transforms)."""

import pytest

from repro.designs.registry import DESIGN_BUILDERS, EXTRA_BUILDERS, build_design
from repro.errors import ReproError
from repro.ir.transforms import (
    EMPTY_PLAN,
    TransformPlan,
    UnrollTransform,
    WidenTransform,
    all_candidates,
    equivalence_diffs,
    transform_names,
    transform_type,
)
from repro.ir.passes import apply_pragmas

#: Small builder parameters so the equivalence sweep simulates quickly.
SMALL_PARAMS = {
    "genome": {"unroll": 16},
    "lstm": {"nodes": 32},
    "face_detection": {"classifiers": 16},
    "matmul": {"pes": 16},
    "stream_buffer": {"depth": 2048},
    "stencil": {"iterations": 2},
    "vector_arith": {"width": 8},
    "hbm_stencil": {"ports": 2},
    "pattern_matching": {"comparators": 16, "pes": 4},
    "double_buffer": {"pes": 8, "tile_depth": 64},
    "dynamic_struct": {"heap_words": 1024},
    "vec_stream": {"depth": 64, "table": 32},
}

MAX_SIM_CYCLES = 20_000

#: Cap per (design, transform) so the sweep stays fast while every
#: transform kind still sees every design it applies to.
CANDIDATES_PER_PAIR = 2


def small_design(name):
    return build_design(name, **SMALL_PARAMS[name])


def all_design_names():
    return list(DESIGN_BUILDERS) + list(EXTRA_BUILDERS)


class TestCandidates:
    @pytest.mark.parametrize("design_name", all_design_names())
    def test_candidates_construct(self, design_name):
        design = small_design(design_name)
        for transform in all_candidates(design):
            assert transform.name in transform_names()
            # Spec round-trips through the wire form.
            name, params = transform.spec()
            rebuilt = transform_type(name)(**params)
            assert rebuilt == transform
            assert rebuilt.digest() == transform.digest()

    def test_vec_stream_exercises_every_kind(self):
        # The supplementary vec_stream design was built so all five
        # transforms apply somewhere.
        kinds = {t.name for t in all_candidates(small_design("vec_stream"))}
        assert kinds == set(transform_names())


class TestEquivalence:
    """Every enumerated candidate preserves interp behaviour."""

    @pytest.mark.parametrize("design_name", all_design_names())
    def test_candidates_equivalent(self, design_name):
        design = small_design(design_name)
        per_kind = {}
        for transform in all_candidates(design):
            picked = per_kind.setdefault(transform.name, [])
            if len(picked) >= CANDIDATES_PER_PAIR:
                continue
            picked.append(transform)
        for kind, picks in sorted(per_kind.items()):
            for transform in picks:
                transformed = transform.apply(design)
                diffs = equivalence_diffs(
                    design, transformed, max_cycles=MAX_SIM_CYCLES
                )
                assert diffs == [], f"{design_name}/{transform.spec()}: {diffs}"

    @pytest.mark.parametrize("design_name", all_design_names())
    def test_candidates_equivalent_after_lowering(self, design_name):
        design = small_design(design_name)
        seen = set()
        for transform in all_candidates(design):
            if transform.name in seen:
                continue
            seen.add(transform.name)
            lowered = apply_pragmas(transform.apply(design))
            diffs = equivalence_diffs(design, lowered, max_cycles=MAX_SIM_CYCLES)
            assert diffs == [], f"{design_name}/{transform.spec()}: {diffs}"


class TestProperties:
    def test_unroll_divides_trip_count(self):
        design = small_design("vec_stream")
        for transform in UnrollTransform.candidates(design):
            name, params = transform.spec()
            out = transform.apply(design)
            loops = {l.name: l for _k, l in out.all_loops()}
            base = {l.name: l for _k, l in design.all_loops()}
            loop = loops[params["loop"]]
            assert loop.unroll == params["factor"]
            assert base[params["loop"]].trip_count % params["factor"] == 0

    def test_tile_divides_trip_counts(self):
        design = small_design("vec_stream")
        for transform in transform_type("tile").candidates(design):
            name, params = transform.spec()
            out = transform.apply(design)
            base = {l.name: l for _k, l in design.all_loops()}
            tiled = {l.name: l for _k, l in out.all_loops()}
            original = base[params["loop"]]
            assert original.trip_count % params["tiles"] == 0
            # The tiled loop nest covers exactly the original trip count.
            produced = [
                l for name_, l in tiled.items() if name_ not in base
            ]
            total = sum(l.trip_count for l in produced) or tiled[
                params["loop"]
            ].trip_count * params["tiles"]
            assert total == original.trip_count

    def test_widen_preserves_lane_math(self):
        design = small_design("vec_stream")
        candidates = WidenTransform.candidates(design)
        assert candidates, "vec_stream must offer widen candidates"
        for transform in candidates:
            _name, params = transform.spec()
            out = transform.apply(design)
            fifo = out.fifos[params["fifo"]]
            base = design.fifos[params["fifo"]]
            assert fifo.elem_type.bits == base.elem_type.bits * params["lanes"]
            diffs = equivalence_diffs(design, out, max_cycles=MAX_SIM_CYCLES)
            assert diffs == []

    def test_unroll_rejects_rate_hazards(self):
        # split writes internal FIFOs of depth 8: a 16x merged firing can
        # never drain within one firing -> the guard must refuse.
        design = small_design("vec_stream")
        with pytest.raises(ReproError):
            UnrollTransform(loop="split", factor=16).apply(design)

    def test_unroll_candidates_respect_fifo_depth(self):
        design = small_design("vec_stream")
        for transform in UnrollTransform.candidates(design):
            _name, params = transform.spec()
            if params["loop"] == "split":
                assert params["factor"] <= 8


class TestPlans:
    def test_plan_composition_equivalent(self):
        design = small_design("vec_stream")
        plan = TransformPlan.from_spec(
            [["unroll", {"loop": "scale_table", "factor": 4}],
             ["tile", {"loop": "scale_table", "tiles": 2}]]
        )
        out = plan.apply(design)
        diffs = equivalence_diffs(design, out, max_cycles=MAX_SIM_CYCLES)
        assert diffs == []

    def test_plan_digest_stable_and_order_sensitive(self):
        spec = [["unroll", {"loop": "scale_table", "factor": 4}],
                ["tile", {"loop": "scale_table", "tiles": 2}]]
        a = TransformPlan.from_spec(spec)
        b = TransformPlan.from_spec(spec)
        swapped = TransformPlan.from_spec(list(reversed(spec)))
        assert a.digest() == b.digest()
        assert a.digest() != swapped.digest()
        assert a.to_spec() == spec

    def test_empty_plan_is_identity(self):
        design = small_design("vec_stream")
        out = EMPTY_PLAN.apply(design)
        from repro.pipeline.digest import design_digest

        assert design_digest(out) == design_digest(design)

    def test_bad_spec_rejected(self):
        with pytest.raises(ReproError):
            TransformPlan.from_spec([["no_such_transform", {}]])
        with pytest.raises(ReproError):
            TransformPlan.from_spec([["unroll", {"loop": "x"}]])
