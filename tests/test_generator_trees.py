"""Structural tests for the generator's registered trees and edge cases."""

import math

import pytest

from repro.control.styles import ControlStyle
from repro.delay.hls_model import HlsDelayModel
from repro.ir.builder import DFGBuilder
from repro.ir.passes import apply_pragmas
from repro.ir.program import Buffer, Design, Fifo, Kernel, Loop
from repro.ir.types import i32
from repro.rtl.generator import GenOptions, generate_netlist
from repro.rtl.netlist import CellKind, NetKind
from repro.scheduling.chaining import ChainingScheduler


def generate(design, control=ControlStyle.STALL, clock=1000 / 300):
    lowered = apply_pragmas(design)
    schedules = {
        (k.name, l.name): ChainingScheduler(HlsDelayModel(), clock).schedule(l.body)
        for k, l in lowered.all_loops()
    }
    return generate_netlist(lowered, schedules, GenOptions(control=control))


def mem_design(depth, extra_store=0, extra_load=0, with_load=False):
    design = Design("m", meta={"clock_mhz": 300})
    fin = design.add_fifo(Fifo("fin", i32, external=True))
    buf = design.add_buffer(Buffer("big", i32, depth=depth))
    b = DFGBuilder("body")
    idx = b.input("i", i32)
    st = b.store(buf, idx, b.fifo_read(fin))
    if extra_store:
        st.attrs["extra_latency"] = extra_store
    if with_load:
        fout = design.add_fifo(Fifo("fout", i32, external=True))
        ld = b.load(buf, idx)
        if extra_load:
            ld.producer.attrs["extra_latency"] = extra_load
        b.fifo_write(fout, ld)
    kernel = design.add_kernel(Kernel("k"))
    kernel.add_loop(Loop("l", b.build(), trip_count=depth, pipeline=True))
    design.verify()
    return design


class TestDistributionTree:
    def test_flat_net_without_extra_latency(self):
        gen = generate(mem_design(1 << 17, extra_store=0))
        banks = Buffer("big", i32, 1 << 17).bram36_units()
        wdata = [n for n in gen.netlist.nets.values() if "wdata" in n.name]
        assert len(wdata) == 1
        assert wdata[0].fanout == banks

    def test_tree_with_extra_latency(self):
        gen = generate(mem_design(1 << 17, extra_store=2))
        banks = Buffer("big", i32, 1 << 17).bram36_units()
        # No single MEM net should carry the whole bank fanout anymore.
        worst = max(
            n.fanout for n in gen.netlist.nets_of_kind(NetKind.MEM)
        )
        assert worst < banks
        # Tree registers exist.
        assert any("_t2_" in name for name in gen.netlist.cells)

    def test_tree_register_layers_match_extra(self):
        gen = generate(mem_design(1 << 17, extra_store=3))
        # layer markers t3 (top) .. t1 (leaf-most)
        for layer in (1, 2, 3):
            assert any(f"_t{layer}_" in name for name in gen.netlist.cells), layer

    def test_tree_reaches_every_bank(self):
        gen = generate(mem_design(1 << 15, extra_store=2))
        banks = [c for c in gen.netlist.cells.values() if c.kind is CellKind.BRAM]
        fed = set()
        for net in gen.netlist.nets_of_kind(NetKind.MEM):
            for cell, pin in net.sinks:
                if cell.kind is CellKind.BRAM and pin == "din":
                    fed.add(cell.name)
        assert fed == {c.name for c in banks if c.tag == "buffer:big"}


class TestMuxTree:
    def test_flat_mux_when_no_extra(self):
        gen = generate(mem_design(1 << 15, with_load=True))
        muxes = [c for c in gen.netlist.cells if "_mux" in c]
        assert len(muxes) == 1

    def test_registered_mux_levels(self):
        gen = generate(mem_design(1 << 15, with_load=True, extra_load=2))
        level0 = [c for c in gen.netlist.cells if "_mux0_" in c]
        level1 = [c for c in gen.netlist.cells if "_mux1_" in c]
        assert len(level0) > 1
        assert len(level1) == 1
        assert any("_mr0_" in c for c in gen.netlist.cells)

    def test_every_bank_feeds_some_mux(self):
        gen = generate(mem_design(1 << 15, with_load=True, extra_load=2))
        fed_from = set()
        for net in gen.netlist.nets_of_kind(NetKind.MEM):
            if net.driver.kind is CellKind.BRAM:
                fed_from.add(net.driver.name)
        banks = {c.name for c in gen.netlist.cells.values() if c.kind is CellKind.BRAM}
        assert fed_from == banks


class TestEdgeCases:
    def test_single_op_loop(self):
        design = Design("tiny", meta={"clock_mhz": 300})
        fin = design.add_fifo(Fifo("fin", i32, external=True))
        fout = design.add_fifo(Fifo("fout", i32, external=True))
        b = DFGBuilder("body")
        b.fifo_write(fout, b.fifo_read(fin))
        design.add_kernel(Kernel("k")).add_loop(
            Loop("l", b.build(), trip_count=4, pipeline=True)
        )
        design.verify()
        gen = generate(design, ControlStyle.SKID_MINAREA)
        gen.netlist.validate()
        assert gen.loops[0].depth >= 1

    def test_operand_used_twice_two_pins(self):
        design = Design("dup", meta={"clock_mhz": 300})
        fout = design.add_fifo(Fifo("fout", i32, external=True))
        b = DFGBuilder("body")
        x = b.input("x", i32)
        b.fifo_write(fout, b.mul(x, x))
        design.add_kernel(Kernel("k")).add_loop(
            Loop("l", b.build(), trip_count=4, pipeline=True)
        )
        design.verify()
        gen = generate(design)
        x_nets = [n for n in gen.netlist.nets.values() if ".x_c0" in n.name]
        assert x_nets and x_nets[0].fanout == 2  # both mul pins

    def test_multi_cycle_consumer_gets_pipe_regs(self):
        design = Design("span", meta={"clock_mhz": 300})
        fout = design.add_fifo(Fifo("fout", i32, external=True))
        b = DFGBuilder("body")
        x = b.input("x", i32)
        late = b.reg(b.reg(b.reg(x)))  # defined at cycle 3
        early = b.add(x, x)  # consumed at cycle 0
        b.fifo_write(fout, b.add(late, b.reg(early)))
        design.add_kernel(Kernel("k")).add_loop(
            Loop("l", b.build(), trip_count=4, pipeline=True)
        )
        design.verify()
        gen = generate(design)
        gen.netlist.validate()
        pipe_regs = [c for c in gen.netlist.cells.values() if c.tag == "pipe_reg"]
        assert pipe_regs  # x must be carried across boundaries
