"""Hot-path profiler: self-time math, power-law fits, super-linear flags.

Operates on synthetic ``repro-run-report/1`` documents so the arithmetic
is exactly checkable; the end-to-end path over real reports is exercised
by the CLI (``repro profile``) and the profile benchmark.
"""

from __future__ import annotations

import pytest

from repro.obs.profiler import (
    FLOW_OVERHEAD_PATH,
    PROFILE_SCHEMA,
    SUPERLINEAR_MIN_SIGNAL_MS,
    SUPERLINEAR_SLOPE,
    fit_power_law,
    profile_reports,
    render_profile,
    stage_self_times,
)


def _stage(name, duration_ms, children=()):
    return {"name": name, "duration_ms": duration_ms, "children": list(children)}


def _report(stages, run_ms=None):
    if run_ms is None:
        run_ms = sum(s["duration_ms"] for s in stages)
    return {"runs": [{"duration_ms": run_ms, "stages": list(stages)}]}


class TestSelfTime:
    def test_self_time_subtracts_children(self):
        tree = _stage(
            "scheduling", 100.0,
            [_stage("calibration", 30.0), _stage("alap", 20.0)],
        )
        entries = dict(
            (path, self_ms) for path, self_ms, _total in stage_self_times(tree)
        )
        assert entries["scheduling"] == pytest.approx(50.0)
        assert entries["scheduling/calibration"] == pytest.approx(30.0)
        assert entries["scheduling/alap"] == pytest.approx(20.0)

    def test_self_time_clamps_at_zero(self):
        # Timer skew can make children sum past the parent; never negative.
        tree = _stage("fast", 1.0, [_stage("child", 5.0)])
        entries = {p: s for p, s, _t in stage_self_times(tree)}
        assert entries["fast"] == 0.0

    def test_paths_nest_with_slashes(self):
        tree = _stage("a", 9.0, [_stage("b", 6.0, [_stage("c", 3.0)])])
        paths = [p for p, _s, _t in stage_self_times(tree)]
        assert paths == ["a", "a/b", "a/b/c"]


class TestPowerLawFit:
    def test_linear_data_fits_slope_one(self):
        slope = fit_power_law([(1, 10.0), (2, 20.0), (4, 40.0)])
        assert slope == pytest.approx(1.0, abs=0.01)

    def test_quadratic_data_fits_slope_two(self):
        slope = fit_power_law([(1, 3.0), (2, 12.0), (4, 48.0), (8, 192.0)])
        assert slope == pytest.approx(2.0, abs=0.01)

    def test_constant_data_fits_slope_zero(self):
        slope = fit_power_law([(1, 5.0), (2, 5.0), (4, 5.0)])
        assert slope == pytest.approx(0.0, abs=0.01)

    def test_single_point_is_unfittable(self):
        assert fit_power_law([(2, 10.0)]) is None
        assert fit_power_law([(2, 10.0), (2, 12.0)]) is None  # same x

    def test_nonpositive_values_are_dropped(self):
        assert fit_power_law([(0, 1.0), (-1, 2.0)]) is None

    def test_subfloor_points_are_censored(self):
        # A 0.2 ms -> 2 ms transition is the timer becoming measurable,
        # not super-linear scaling: the sub-floor point must not steepen
        # the fit of the points that carry real signal.
        slope = fit_power_law([(2, 0.2), (4, 3.0), (8, 6.0)])
        assert slope == pytest.approx(1.0, abs=0.01)
        # All points censored -> unfittable, not a fabricated slope.
        assert fit_power_law([(2, 0.1), (4, 0.2), (8, 0.4)]) is None


class TestProfileReports:
    def _sweep(self):
        # quadratic stage grows with factor^2; linear with factor^1.
        return [
            (
                float(f),
                _report(
                    [
                        _stage("placement", 10.0 * f * f),
                        _stage("scheduling", 5.0 * f),
                    ]
                ),
            )
            for f in (1, 2, 4)
        ]

    def test_schema_and_ranking(self):
        doc = profile_reports(self._sweep(), top=5)
        assert doc["schema"] == PROFILE_SCHEMA
        paths = [spot["path"] for spot in doc["hotspots"]]
        assert paths[0] == "placement"  # 10+40+160 dominates
        assert "scheduling" in paths
        shares = [spot["share"] for spot in doc["hotspots"]]
        assert sum(shares) == pytest.approx(1.0, abs=0.01)

    def test_superlinear_stage_is_flagged(self):
        doc = profile_reports(self._sweep())
        by_path = {spot["path"]: spot for spot in doc["hotspots"]}
        assert by_path["placement"]["slope"] == pytest.approx(2.0, abs=0.05)
        assert by_path["placement"]["superlinear"] is True
        assert by_path["scheduling"]["slope"] == pytest.approx(1.0, abs=0.05)
        assert by_path["scheduling"]["superlinear"] is False
        assert doc["superlinear_paths"] == ["placement"]
        assert doc["factors"] == [1.0, 2.0, 4.0]
        assert doc["slope_threshold"] == SUPERLINEAR_SLOPE

    def test_flow_overhead_is_accounted(self):
        report = _report([_stage("placement", 40.0)], run_ms=100.0)
        doc = profile_reports([(None, report)], top=10)
        by_path = {spot["path"]: spot for spot in doc["hotspots"]}
        assert by_path[FLOW_OVERHEAD_PATH]["self_ms"] == pytest.approx(60.0)

    def test_no_factor_profile_has_no_slopes(self):
        report = _report([_stage("placement", 40.0)])
        doc = profile_reports([(None, report)])
        assert "factors" not in doc
        assert all("slope" not in spot for spot in doc["hotspots"])

    def test_top_k_truncates(self):
        stages = [_stage(f"s{i}", float(100 - i)) for i in range(20)]
        doc = profile_reports([(None, _report(stages))], top=3)
        assert len(doc["hotspots"]) == 3
        assert doc["hotspots"][0]["path"] == "s0"

    def test_repeat_reduce_min_keeps_fastest_reading_per_path(self):
        # Three repeats at each factor; one repeat per factor is polluted
        # by a 50 ms collector pause on the placement span.  The min
        # reduction must recover the clean linear readings.
        reports = []
        for f in (2, 4, 8):
            for rep in range(3):
                noise = 50.0 if rep == 1 else 0.0
                reports.append(
                    (float(f), _report([_stage("placement", 10.0 * f + noise)]))
                )
        doc = profile_reports(reports, repeat_reduce="min")
        by_path = {spot["path"]: spot for spot in doc["hotspots"]}
        spot = by_path["placement"]
        assert spot["by_factor"] == {"2": 20.0, "4": 40.0, "8": 80.0}
        assert spot["self_ms"] == pytest.approx(140.0)  # sum of minima
        assert spot["slope"] == pytest.approx(1.0, abs=0.01)
        assert spot["superlinear"] is False

    def test_steep_subsignal_path_reports_slope_but_is_not_flagged(self):
        # A path whose top reading never outgrows the noise floor fits a
        # steep slope from floor-adjacent, high-relative-noise points; it
        # must not fail a run.  The same shape scaled up must be flagged.
        small = [
            (float(f), _report([_stage("wobble", 0.9 * f)])) for f in (2, 4, 8)
        ]
        doc = profile_reports(small, slope_threshold=0.5)
        spot = doc["hotspots"][0]
        assert spot["path"] == "wobble"
        assert max(spot["by_factor"].values()) < SUPERLINEAR_MIN_SIGNAL_MS
        assert spot["slope"] > 0.5
        assert spot["superlinear"] is False
        assert doc["superlinear_paths"] == []

        big = [
            (float(f), _report([_stage("wobble", 9.0 * f)])) for f in (2, 4, 8)
        ]
        doc = profile_reports(big, slope_threshold=0.5)
        assert doc["hotspots"][0]["superlinear"] is True

    def test_repeat_reduce_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            profile_reports([], repeat_reduce="median")

    def test_cache_replayed_children_do_not_count(self):
        # A replayed child carries zero live duration_ms (its original cost
        # sits in cached_duration_ms) — the parent keeps its full self time.
        tree = _stage(
            "rtl-gen", 30.0,
            [{"name": "emit", "duration_ms": 0.0, "cached_duration_ms": 25.0}],
        )
        doc = profile_reports([(None, _report([tree]))])
        by_path = {spot["path"]: spot for spot in doc["hotspots"]}
        assert by_path["rtl-gen"]["self_ms"] == pytest.approx(30.0)


class TestRender:
    def test_render_mentions_superlinear_paths(self):
        doc = profile_reports(
            [
                (float(f), _report([_stage("placement", 10.0 * f * f)]))
                for f in (1, 2, 4)
            ]
        )
        text = render_profile(doc)
        assert "SUPER-LINEAR" in text
        assert "placement" in text
        assert "sweep over factors 1, 2, 4" in text

    def test_render_plain_profile(self):
        doc = profile_reports([(None, _report([_stage("scheduling", 10.0)]))])
        text = render_profile(doc)
        assert "hot paths by self-time" in text
        assert "scheduling" in text
