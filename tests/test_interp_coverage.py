"""Additional interpreter coverage: remaining opcodes and widths."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.builder import DFGBuilder
from repro.ir.interp import Evaluator, _wrap
from repro.ir.types import DataType, i16, i32, u8, u16


class TestWrap:
    def test_unsigned_wrap(self):
        assert _wrap(256, u8) == 0
        assert _wrap(257, u8) == 1
        assert _wrap(-1, u8) == 255

    def test_signed_wrap_boundaries(self):
        assert _wrap(127, DataType("int", 8)) == 127
        assert _wrap(128, DataType("int", 8)) == -128
        assert _wrap(-129, DataType("int", 8)) == 127

    def test_float_passthrough(self):
        assert _wrap(3.25, DataType("float", 32)) == 3.25

    @settings(max_examples=60, deadline=None)
    @given(st.integers(-(10 ** 9), 10 ** 9))
    def test_wrap_idempotent(self, value):
        once = _wrap(value, i16)
        assert _wrap(once, i16) == once
        assert -(1 << 15) <= once < (1 << 15)


class TestRemainingOpcodes:
    def run_one(self, build, **inputs):
        b = DFGBuilder()
        args = {name: b.input(name, i32) for name in inputs}
        result = build(b, args)
        return Evaluator().run(b.build(), inputs=inputs)[result.name]

    def test_not(self):
        assert self.run_one(lambda b, a: b.not_(a["x"]), x=0) == -1

    def test_xor(self):
        assert self.run_one(lambda b, a: b.xor(a["x"], a["y"]), x=0b1100, y=0b1010) == 0b0110

    def test_or(self):
        assert self.run_one(lambda b, a: b.or_(a["x"], a["y"]), x=0b1100, y=0b1010) == 0b1110

    def test_shr_arithmetic_like(self):
        assert self.run_one(lambda b, a: b.shr(a["x"], b.const(1, i32)), x=-8) == -4

    def test_ne_ge_le(self):
        assert self.run_one(lambda b, a: b.cmp("ne", a["x"], a["y"]), x=1, y=2) == 1
        assert self.run_one(lambda b, a: b.cmp("ge", a["x"], a["y"]), x=2, y=2) == 1
        assert self.run_one(lambda b, a: b.cmp("le", a["x"], a["y"]), x=3, y=2) == 0

    def test_zext_sext(self):
        b = DFGBuilder()
        x = b.input("x", u8)
        wide = b.zext(x, u16, name="wide")
        env = Evaluator().run(b.build(), inputs={"x": 200})
        assert env["wide"] == 200

    def test_trunc_plain(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        narrow = b.trunc(x, u8, name="narrow")
        env = Evaluator().run(b.build(), inputs={"x": 0x1FF})
        assert env["narrow"] == 0xFF

    def test_reg_is_identity_functionally(self):
        b = DFGBuilder()
        x = b.input("x", i32)
        r = b.reg(b.reg(x), name="rr")
        env = Evaluator().run(b.build(), inputs={"x": 77})
        assert env["rr"] == 77

    def test_unrolled_input_base_name_fallback(self):
        """Inputs named `x#k` fall back to the `x` entry of the input map."""
        b = DFGBuilder()
        x0 = b.input("x#0", i32)
        x1 = b.input("x#1", i32)
        s = b.add(x0, x1, name="s")
        env = Evaluator().run(b.build(), inputs={"x": 5})
        assert env["s"] == 10


class TestDataflowDeadlock:
    def test_internal_capacity_deadlock_terminates(self):
        """A writer into a bounded FIFO with no reader deadlocks; the
        dataflow simulator must stop rather than spin to max_cycles."""
        from repro.ir.program import Design, Fifo, Kernel, Loop
        from repro.sim.dataflow import DataflowSim

        design = Design("dead", dataflow=False)
        fin = design.add_fifo(Fifo("fin", i32, depth=4, external=True))
        bounded = design.add_fifo(Fifo("mid", i32, depth=2))
        b = DFGBuilder("body")
        b.fifo_write(bounded, b.fifo_read(fin))
        design.add_kernel(Kernel("k")).add_loop(
            Loop("l", b.build(), trip_count=None, pipeline=True)
        )
        design.verify()
        trace = DataflowSim(design, {"fin": list(range(10))}).run(max_cycles=5000)
        assert trace.cycles < 5000
        assert trace.firings.get("k/l", 0) == 2  # filled the bounded fifo
