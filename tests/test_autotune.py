"""Tests for the automatic optimizer (repro.autotune)."""

import pytest

from repro.autotune import AutoTuneResult, _next_config, auto_optimize
from repro.control.styles import ControlStyle
from repro.opt import BASELINE, FULL, OptimizationConfig
from repro.rtl.netlist import NetKind

from conftest import make_mini_stream_design


class TestPolicy:
    def test_data_critical_enables_scheduling(self):
        nxt, action = _next_config(BASELINE, NetKind.DATA)
        assert nxt.broadcast_aware
        assert "§4.1" in action

    def test_mem_critical_enables_scheduling(self):
        nxt, _ = _next_config(BASELINE, NetKind.MEM)
        assert nxt.broadcast_aware

    def test_enable_critical_switches_control(self):
        nxt, action = _next_config(BASELINE, NetKind.ENABLE)
        assert nxt.control is ControlStyle.SKID_MINAREA
        assert "§4.3" in action

    def test_sync_critical_prunes(self):
        nxt, action = _next_config(BASELINE, NetKind.SYNC)
        assert nxt.sync_pruning
        assert "§4.2" in action

    def test_exhausted_returns_none(self):
        nxt, action = _next_config(FULL, NetKind.DATA)
        assert nxt is None
        assert "all techniques applied" in action

    def test_preserves_other_knobs(self):
        start = OptimizationConfig(broadcast_aware=True)
        nxt, _ = _next_config(start, NetKind.ENABLE)
        assert nxt.broadcast_aware  # kept while adding skid control


class TestLoop:
    @pytest.fixture(scope="class")
    def tuned(self):
        from repro.flow import Flow
        from conftest import make_synthetic_table

        flow = Flow(calibration=make_synthetic_table())
        design = make_mini_stream_design(depth=1 << 18)
        return auto_optimize(design, flow=flow)

    def test_improves_over_baseline(self, tuned):
        assert tuned.best.fmax_mhz > tuned.steps[0].fmax_mhz

    def test_log_explains_actions(self, tuned):
        log = tuned.log()
        assert "step 0: [orig]" in log
        assert "§4" in log

    def test_terminates(self, tuned):
        assert len(tuned.steps) <= 7

    def test_final_config_addresses_mem_and_control(self, tuned):
        cfg = tuned.final_config
        # The big-buffer design has mem + enable broadcasts: both fixes on.
        assert cfg.broadcast_aware
        assert cfg.control.uses_skid

    def test_best_at_least_any_step(self, tuned):
        assert tuned.best.fmax_mhz == pytest.approx(
            max(step.fmax_mhz for step in tuned.steps)
        )


class TestDecisionLog:
    """Regression: each logged action belongs to the step it *created*.

    An earlier version overwrote ``steps[-1].action`` unconditionally every
    iteration, so "baseline" vanished and every action was attributed to
    the step before the one it produced.
    """

    @pytest.fixture(scope="class")
    def tuned(self):
        from repro.flow import Flow
        from conftest import make_synthetic_table

        flow = Flow(calibration=make_synthetic_table())
        design = make_mini_stream_design(depth=1 << 18)
        return auto_optimize(design, flow=flow)

    def test_step_zero_action_is_baseline(self, tuned):
        assert tuned.steps[0].action.startswith("baseline")

    def test_actions_match_the_config_delta_they_created(self, tuned):
        for prev, step in zip(tuned.steps, tuned.steps[1:]):
            if step.config.broadcast_aware and not prev.config.broadcast_aware:
                assert "§4.1" in step.action
            if step.config.control.uses_skid and not prev.config.control.uses_skid:
                assert "§4.3" in step.action
            if step.config.sync_pruning and not prev.config.sync_pruning:
                assert "§4.2" in step.action

    def test_terminal_verdict_annotates_final_step(self, tuned):
        final = tuned.steps[-1].action
        assert "; " in final
        assert "floor" in final or "budget exhausted" in final

    def test_every_step_changed_the_config(self, tuned):
        for prev, step in zip(tuned.steps, tuned.steps[1:]):
            assert step.config != prev.config
