"""Tests for the skeleton characterization harness (§4.1).

These use real (small) skeleton measurements, so they also pin the key
qualitative properties of the physical model: delay grows with broadcast
factor, the factor-1 point matches the HLS prediction for integer ops, and
float multiply measures below its (conservative) prediction.
"""

import pytest

from repro.delay.calibration import (
    build_arith_skeleton,
    build_load_skeleton,
    build_store_skeleton,
    characterize_memory,
    characterize_operator,
)
from repro.delay.tables import hls_predicted_delay
from repro.ir.ops import Opcode
from repro.ir.types import f32, i32
from repro.rtl.netlist import CellKind

FACTORS = (1, 16, 128)


@pytest.fixture(scope="module")
def sub_curve():
    return characterize_operator(Opcode.SUB, i32, FACTORS)


@pytest.fixture(scope="module")
def fmul_curve():
    return characterize_operator(Opcode.MUL, f32, FACTORS)


@pytest.fixture(scope="module")
def store_curve():
    return characterize_memory("store", FACTORS)


class TestSkeletonNetlists:
    def test_arith_skeleton_structure(self):
        nl = build_arith_skeleton(Opcode.ADD, i32, 8)
        bcast = nl.nets["bcast"]
        assert bcast.fanout == 8
        nl.validate()

    def test_store_skeleton_banks(self):
        nl = build_store_skeleton(12)
        assert len(nl.cells_of_kind(CellKind.BRAM)) == 12
        nl.validate()

    def test_load_skeleton_has_mux(self):
        nl = build_load_skeleton(6)
        assert any("rmux" in name for name in nl.cells)
        nl.validate()


class TestOperatorCurves:
    def test_monotone_increasing(self, sub_curve):
        delays = [d for _f, d in sub_curve]
        assert delays == sorted(delays)

    def test_factor1_matches_prediction(self, sub_curve):
        predicted = hls_predicted_delay(Opcode.SUB, i32)
        assert sub_curve[0][1] == pytest.approx(predicted, abs=0.35)

    def test_big_broadcast_well_above_prediction(self, sub_curve):
        predicted = hls_predicted_delay(Opcode.SUB, i32)
        assert sub_curve[-1][1] > predicted * 2

    def test_paper_anchor_factor64(self):
        # §5.2: sub goes 0.78 ns -> ~2.08 ns at broadcast factor 64.
        points = characterize_operator(Opcode.SUB, i32, (64,))
        assert 1.5 <= points[0][1] <= 2.8

    def test_fmul_measures_below_prediction_at_1(self, fmul_curve):
        predicted = hls_predicted_delay(Opcode.MUL, f32)
        assert fmul_curve[0][1] < predicted

    def test_fmul_crosses_prediction(self, fmul_curve):
        predicted = hls_predicted_delay(Opcode.MUL, f32)
        assert fmul_curve[-1][1] > predicted


class TestMemoryCurves:
    def test_store_monotone(self, store_curve):
        delays = [d for _f, d in store_curve]
        assert delays == sorted(delays)

    def test_rejects_bad_op(self):
        with pytest.raises(Exception):
            characterize_memory("readmodifywrite", (1,))

    def test_capacity_limit_truncates_sweep(self):
        # zc706 has 545 BRAM36: a 1024-bank skeleton cannot place.
        points = characterize_memory("store", (1, 1024), device="zc706")
        assert [f for f, _d in points] == [1]


class TestDeterminism:
    def test_same_seed_same_curve(self):
        a = characterize_operator(Opcode.ADD, i32, (8,), seed=99)
        b = characterize_operator(Opcode.ADD, i32, (8,), seed=99)
        assert a == b

    def test_seed_changes_jitter(self):
        a = characterize_operator(Opcode.ADD, i32, (64,), seed=1)
        b = characterize_operator(Opcode.ADD, i32, (64,), seed=2)
        # jitter is small but should show up somewhere in the noise
        assert a != b or True  # placement can coincide; no hard assertion
