"""Functional dataflow simulation: the behavioural face of §3.2/§4.2.

A fused loop synchronizes independent flows per iteration; splitting
(§4.2) must preserve every output stream exactly, and under a stalled
port the split design keeps unaffected lanes moving while the fused one
stalls everything.
"""

import pytest

from repro.designs import build_design
from repro.ir.builder import DFGBuilder
from repro.ir.program import Design, Fifo, Kernel, Loop
from repro.ir.types import DataType, i32, u64
from repro.sim.dataflow import DataflowSim, compare_designs
from repro.sync.pruning import split_independent_flows


def fused_scatter(flows=3):
    """`flows` independent add-one paths fused into one loop (Fig. 5a)."""
    design = Design("fused", dataflow=True)
    b = DFGBuilder("body")
    for i in range(flows):
        fin = design.add_fifo(Fifo(f"in{i}", i32, depth=4, external=True))
        fout = design.add_fifo(Fifo(f"out{i}", i32, depth=4, external=True))
        x = b.fifo_read(fin)
        b.fifo_write(fout, b.add(x, b.const(i, i32)))
    kernel = design.add_kernel(Kernel("k"))
    kernel.add_loop(Loop("fused", b.build(), trip_count=None, pipeline=True))
    design.verify()
    return design


STIMULI = {f"in{i}": list(range(20)) for i in range(3)}


class TestBasics:
    def test_fused_design_computes(self):
        trace = DataflowSim(fused_scatter(), dict(STIMULI)).run()
        for i in range(3):
            assert trace.lane(f"out{i}") == [v + i for v in range(20)]

    def test_split_design_computes_identically(self):
        fused = fused_scatter()
        split = split_independent_flows(fused)
        t_fused, t_split = compare_designs(fused, split, STIMULI)
        for i in range(3):
            assert t_fused.lane(f"out{i}") == t_split.lane(f"out{i}")

    def test_firing_counts(self):
        trace = DataflowSim(fused_scatter(), dict(STIMULI)).run()
        assert trace.firings["k/fused"] == 20

    def test_trip_count_limits_firings(self):
        design = Design("tc")
        fin = design.add_fifo(Fifo("fin", i32, depth=4, external=True))
        fout = design.add_fifo(Fifo("fout", i32, depth=4, external=True))
        b = DFGBuilder("body")
        b.fifo_write(fout, b.fifo_read(fin))
        k = design.add_kernel(Kernel("k"))
        k.add_loop(Loop("l", b.build(), trip_count=5, pipeline=True))
        trace = DataflowSim(design, {"fin": list(range(9))}).run()
        assert len(trace.lane("fout")) == 5


class TestSyncBroadcastBehaviour:
    """Why the fused synchronization is 'excessive' (§3.2): one stalled
    port freezes every flow in the fused design but not in the split one."""

    @staticmethod
    def _stall_port0(name, cycle):
        # Port 0 delivers only every 4th cycle; others stream freely.
        return name == "in0" and cycle % 4 != 0

    def test_fused_throughput_gated_by_slowest_port(self):
        trace = DataflowSim(
            fused_scatter(), dict(STIMULI), stall_inputs=self._stall_port0
        ).run()
        # All lanes complete, but only as fast as port 0 allows.
        assert trace.cycles >= 20 * 4 - 4

    def test_split_lanes_uncoupled(self):
        fused = fused_scatter()
        split = split_independent_flows(fused)
        t_fused, t_split = compare_designs(
            fused, split, STIMULI, stall_inputs=self._stall_port0
        )
        # outputs identical...
        for i in range(3):
            assert t_fused.lane(f"out{i}") == t_split.lane(f"out{i}")
        # ...but the split design finishes the healthy lanes early; measure
        # via total cycles-to-drain: split <= fused.
        assert t_split.cycles <= t_fused.cycles

    def test_split_never_slower_unstalled(self):
        fused = fused_scatter()
        split = split_independent_flows(fused)
        t_fused, t_split = compare_designs(fused, split, STIMULI)
        assert t_split.cycles <= t_fused.cycles + 1


class TestHbmStencilFunctional:
    """The §5.3 design end to end: split output streams bit-match fused."""

    def test_split_preserves_lane_values(self):
        design = build_design("hbm_stencil", ports=4)
        # Keep the context kernel out of the functional run: dataflow sim
        # fires only fifo-coupled loops; the context has no fifos but its
        # CALL would fire unboundedly, so drop it for the comparison.
        design.kernels = [k for k in design.kernels if k.name == "hbm_scatter"]
        split = split_independent_flows(design)
        words = [(i << 8) | (2 * i + 1) for i in range(10)]
        stimuli = {f"hbm{p}": list(words) for p in range(4)}
        sim_a = DataflowSim(design, {k: list(v) for k, v in stimuli.items()})
        sim_b = DataflowSim(split, {k: list(v) for k, v in stimuli.items()})
        # lane fifos are internal; expose them by reading evaluator state
        trace_a = sim_a.run()
        trace_b = sim_b.run()
        for p in range(4):
            for s in range(8):
                lane = f"lane{p}_{s}"
                assert list(sim_a.evaluator.fifos.get(lane, [])) == list(
                    sim_b.evaluator.fifos.get(lane, [])
                )
        assert trace_a.firings and trace_b.firings
