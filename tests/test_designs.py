"""Tests for the nine benchmark designs (repro.designs)."""

import pytest

from repro.analysis import classify_design
from repro.designs import build_design, design_names
from repro.errors import ReproError
from repro.ir.passes import apply_pragmas

ALL = design_names()


class TestRegistry:
    def test_nine_designs(self):
        assert len(ALL) == 9

    def test_table1_order(self):
        assert ALL == [
            "genome",
            "lstm",
            "face_detection",
            "matmul",
            "stream_buffer",
            "stencil",
            "vector_arith",
            "hbm_stencil",
            "pattern_matching",
        ]

    def test_unknown_design(self):
        with pytest.raises(ReproError):
            build_design("bitcoin_miner")


class TestAllDesigns:
    @pytest.mark.parametrize("name", ALL)
    def test_builds_and_verifies(self, name):
        design = build_design(name)
        design.verify()

    @pytest.mark.parametrize("name", ALL)
    def test_pragma_lowering_verifies(self, name):
        lowered = apply_pragmas(build_design(name))
        lowered.verify()

    @pytest.mark.parametrize("name", ALL)
    def test_meta_complete(self, name):
        design = build_design(name)
        assert "clock_mhz" in design.meta
        assert "broadcast_type" in design.meta

    @pytest.mark.parametrize("name", ALL)
    def test_device_matches_table1(self, name):
        from repro.experiments.paper_data import TABLE1

        design = build_design(name)
        target = TABLE1[name].target.lower()
        device_tokens = {
            "aws-f1": "aws f1",
            "zc706": "zc706",
            "alveo-u50": "alveo u50",
            "virtex-7": "virtex-7",
        }
        assert device_tokens[design.device] in target.replace("(", "").replace(")", "")


class TestBroadcastStructures:
    """Each design must exhibit the broadcast classes Table 1 assigns it."""

    def _kinds(self, name, **params):
        return set(classify_design(build_design(name, **params)).kinds)

    def test_genome_data_broadcast(self):
        kinds = self._kinds("genome", unroll=16)
        assert "data" in kinds

    def test_genome_broadcast_scales_with_unroll(self):
        small = classify_design(build_design("genome", unroll=8))
        big = classify_design(build_design("genome", unroll=32))
        s = max(r.fanout for r in small.of_kind("data"))
        b = max(r.fanout for r in big.of_kind("data"))
        assert b > s

    def test_lstm_data_broadcast(self):
        assert "data" in self._kinds("lstm", nodes=32)

    def test_matmul_data_and_control(self):
        kinds = self._kinds("matmul", pes=16)
        assert "data" in kinds and "pipeline-control" in kinds

    def test_stream_buffer_memory_broadcast(self):
        kinds = self._kinds("stream_buffer", depth=1 << 17)
        assert "memory" in kinds

    def test_hbm_stencil_fused_flows(self):
        report = classify_design(build_design("hbm_stencil", ports=6))
        fused = [r for r in report.of_kind("sync") if "fused" in r.subject]
        assert fused and fused[0].fanout == 6

    def test_pattern_matching_data_and_sync(self):
        kinds = self._kinds("pattern_matching", comparators=16, pes=6)
        assert "data" in kinds and "sync" in kinds


class TestParameterization:
    def test_genome_unroll_param(self):
        design = apply_pragmas(build_design("genome", unroll=8))
        loop = next(l for k, l in design.all_loops() if l.name == "back_search")
        curr_x = loop.body.values["curr_x"]
        assert curr_x.fanout == 8

    def test_stencil_iterations_param(self):
        d2 = build_design("stencil", iterations=2)
        d4 = build_design("stencil", iterations=4)
        calls2 = sum(
            1 for _, l in d2.all_loops() for op in l.body.ops if op.opcode.value == "call"
        )
        calls4 = sum(
            1 for _, l in d4.all_loops() for op in l.body.ops if op.opcode.value == "call"
        )
        assert calls4 == 2 * calls2

    def test_vector_width_validation(self):
        with pytest.raises(ValueError):
            build_design("vector_arith", width=100)  # not a power of two

    def test_vector_width_param(self):
        design = build_design("vector_arith", width=16)
        assert design.meta["width"] == 16

    def test_hbm_ports_param(self):
        design = build_design("hbm_stencil", ports=4)
        external = [f for f in design.fifos.values() if f.external]
        assert len(external) == 4
        internal = [f for f in design.fifos.values() if not f.external]
        assert len(internal) == 4 * 8

    def test_pattern_matching_dynamic_latency_flag(self):
        design = build_design("pattern_matching", pes=4, dynamic_latency=True)
        calls = [
            op
            for _, l in design.all_loops()
            for op in l.body.ops
            if op.opcode.value == "call" and op.attrs.get("dynamic_latency")
        ]
        assert len(calls) == 1

    def test_stream_buffer_depth_param(self):
        small = build_design("stream_buffer", depth=1 << 14)
        big = build_design("stream_buffer", depth=1 << 20)
        assert (
            big.buffers["buffer"].bram36_units() > small.buffers["buffer"].bram36_units()
        )
