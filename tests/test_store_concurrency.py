"""Result-store concurrency: evict() racing put()/get() across processes.

The store's contract under concurrency (DESIGN.md, service/store.py):

* a reader can never observe a torn payload (atomic temp+rename writes);
* an evictor can never delete the entry a concurrent put just (re)wrote
  (writers and evictors serialize on ``<root>/.lock``, and eviction
  re-checks each victim's mtime against its directory-scan snapshot);
* at rest, every sidecar has its payload (payload-first/sidecar-last).

The hammer spawns real processes — a writer re-putting a hot digest amid
filler churn, an evictor spinning ``evict()``, readers validating every
byte they get — against one shared store small enough that eviction runs
constantly.  Worker functions are module-level so they survive both
``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time

import pytest

from repro.service.request import FlowRequest
from repro.service.store import STORE_SCHEMA, ResultStore
from repro.service.worker import execute_request

#: Small enough that the filler churn keeps eviction busy every put.
MAX_ENTRIES = 4
FILLER_SEEDS = tuple(range(3000, 3008))
HAMMER_SECONDS = 4.0


def _filler_request(seed: int) -> FlowRequest:
    return FlowRequest.make("vector_arith", config="orig", seed=seed)


def _hot_request() -> FlowRequest:
    return FlowRequest.make("vector_arith", config="orig", seed=2020)


def _writer_loop(root, result_path, errors_path, deadline):
    """put() the hot digest amid filler churn; the hot entry must be a
    valid hit immediately after every one of its puts — an evictor
    working from a stale scan is exactly what would break this.

    The filler burst between hot puts ages the hot entry all the way to
    LRU-eligibility, so a concurrent evictor regularly *decides* to
    delete it off a scan taken just before the re-put — the widest
    possible stale-decision window."""
    with open(result_path, "rb") as handle:
        result = pickle.load(handle)
    store = ResultStore(root, max_entries=MAX_ENTRIES)
    hot = _hot_request()
    errors = []
    index = 0
    while time.time() < deadline:
        for seed in FILLER_SEEDS:
            store.put(_filler_request(seed), result)
        entry = store.put(hot, result)
        hit = store.get(entry.digest)
        if hit is None:
            errors.append(f"hot digest missing immediately after put #{index}")
        elif hit.result_digest != entry.result_digest:
            errors.append(f"hot digest changed identity after put #{index}")
        index += 1
    with open(errors_path, "w") as handle:
        handle.write("\n".join(errors))


def _evictor_loop(root, errors_path, deadline):
    """Spin evict() as fast as possible — the adversary."""
    store = ResultStore(root, max_entries=MAX_ENTRIES)
    errors = []
    while time.time() < deadline:
        try:
            store.evict()
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            errors.append(f"evict raised {type(exc).__name__}: {exc}")
            break
    with open(errors_path, "w") as handle:
        handle.write("\n".join(errors))


def _reader_loop(root, errors_path, deadline):
    """get()/get_bytes() everything, constantly; every payload that comes
    back must unpickle to a schema-valid document for its digest."""
    store = ResultStore(root, max_entries=MAX_ENTRIES)
    digests = [_hot_request().digest()] + [
        _filler_request(seed).digest() for seed in FILLER_SEEDS
    ]
    errors = []
    index = 0
    while time.time() < deadline:
        digest = digests[index % len(digests)]
        index += 1
        payload = store.get_bytes(digest)
        if payload is None:
            continue  # a miss (evicted, or not written yet) is always legal
        try:
            document = pickle.loads(payload)
        except Exception as exc:  # noqa: BLE001 - torn payload
            errors.append(
                f"torn payload for {digest[:12]}: {type(exc).__name__}: {exc}"
            )
            continue
        if document.get("schema") != STORE_SCHEMA:
            errors.append(f"bad schema for {digest[:12]}: {document.get('schema')!r}")
        elif document.get("meta", {}).get("digest") != digest:
            errors.append(f"payload/digest mismatch for {digest[:12]}")
    with open(errors_path, "w") as handle:
        handle.write("\n".join(errors))


class TestStoreConcurrency:
    def test_evict_racing_put_and_get_is_safe(self, tmp_path):
        result = execute_request(_hot_request())
        result_path = str(tmp_path / "result.pkl")
        with open(result_path, "wb") as handle:
            pickle.dump(result, handle, protocol=4)
        root = str(tmp_path / "store")
        deadline = time.time() + HAMMER_SECONDS
        specs = [
            (_writer_loop, (root, result_path)),
            (_evictor_loop, (root,)),
            (_reader_loop, (root,)),
            (_reader_loop, (root,)),
        ]
        processes = []
        error_paths = []
        for index, (target, args) in enumerate(specs):
            errors_path = str(tmp_path / f"errors-{index}.txt")
            error_paths.append(errors_path)
            process = multiprocessing.Process(
                target=target, args=args + (errors_path, deadline)
            )
            process.start()
            processes.append(process)
        for process in processes:
            process.join(timeout=HAMMER_SECONDS + 180)
            assert not process.is_alive(), "hammer worker wedged"
            assert process.exitcode == 0

        failures = []
        for errors_path in error_paths:
            with open(errors_path) as handle:
                text = handle.read().strip()
            if text:
                failures.append(text)
        assert not failures, "\n".join(failures)

        # At-rest consistency: no orphan sidecars, bound respected.
        store = ResultStore(root, max_entries=MAX_ENTRIES)
        names = os.listdir(root)
        for name in names:
            if name.endswith(".json"):
                assert name[: -len(".json")] + ".pkl" in names, (
                    f"orphan sidecar {name}"
                )
        assert len(store) <= MAX_ENTRIES + 1  # the writer's last put pair
        store.evict()
        assert len(store) <= MAX_ENTRIES

    def test_stale_scan_cannot_delete_rewritten_entry(self, tmp_path, monkeypatch):
        """Deterministic version of the race the hammer can only make
        probable: an evictor that *decided* off an old directory scan
        must re-check mtimes and spare an entry a put rewrote since."""
        result = execute_request(_hot_request())
        root = str(tmp_path / "store")
        # Writer bound is one larger so its own put-time eviction never
        # removes the hot entry; the tighter-bounded evictor still sees
        # one entry of excess — the hot entry, its stale LRU victim.
        writer = ResultStore(root, max_entries=MAX_ENTRIES + 1)
        hot_entry = writer.put(_hot_request(), result)
        for seed in FILLER_SEEDS[:MAX_ENTRIES]:
            writer.put(_filler_request(seed), result)
        # The hot entry is now the LRU victim in this (soon stale) scan.
        evictor = ResultStore(root, max_entries=MAX_ENTRIES)
        stale_records = evictor.entries()
        assert stale_records[0]["digest"] == hot_entry.digest
        time.sleep(0.01)  # ensure the rewrite lands a distinct mtime
        writer.put(_hot_request(), result)  # concurrent rewrite
        monkeypatch.setattr(evictor, "entries", lambda: stale_records)
        evictor.evict()
        hit = writer.get(hot_entry.digest)
        assert hit is not None, "evictor deleted a just-rewritten entry"
        assert hit.result_digest == hot_entry.result_digest

    def test_no_temp_droppings_survive(self, tmp_path):
        """Atomic writes must not leak .tmp files on the happy path."""
        result = execute_request(_hot_request())
        store = ResultStore(str(tmp_path / "store"), max_entries=2)
        for seed in FILLER_SEEDS[:4]:
            store.put(_filler_request(seed), result)
        leftovers = [
            name for name in os.listdir(store.root) if name.endswith(".tmp")
        ]
        assert leftovers == []
