"""Tests for RTL netlist generation (repro.rtl.generator)."""

import pytest

from repro.control.styles import ControlStyle
from repro.delay.hls_model import HlsDelayModel
from repro.ir.builder import DFGBuilder
from repro.ir.passes import apply_pragmas
from repro.ir.program import Buffer, Design, Fifo, Kernel, Loop
from repro.ir.types import i32
from repro.rtl.generator import GenOptions, generate_netlist
from repro.rtl.netlist import CellKind, NetKind
from repro.scheduling.chaining import ChainingScheduler

CLOCK = 1000.0 / 300


def schedules_for(design, clock=CLOCK):
    model = HlsDelayModel()
    return {
        (k.name, l.name): ChainingScheduler(model, clock).schedule(l.body)
        for k, l in design.all_loops()
    }


def generate(design, control=ControlStyle.STALL):
    lowered = apply_pragmas(design)
    return generate_netlist(
        lowered, schedules_for(lowered), GenOptions(control=control)
    )


def stream_design(buffer_depth=4096, fifo_count=1):
    design = Design("s", meta={"clock_mhz": 300})
    buf = design.add_buffer(Buffer("m", i32, buffer_depth))
    kernel = design.add_kernel(Kernel("k"))
    b = DFGBuilder("body")
    acc = None
    for i in range(fifo_count):
        fin = design.add_fifo(Fifo(f"in{i}", i32, external=True))
        x = b.fifo_read(fin)
        acc = x if acc is None else b.add(acc, x)
    b.store(buf, b.input("i", i32), acc)
    kernel.add_loop(Loop("l", b.build(), trip_count=buffer_depth, pipeline=True))
    design.verify()
    return design


def farm_design(pes=6, pruned_flags=False):
    design = Design("farm")
    out = design.add_fifo(Fifo("out", i32, external=True))
    kernel = design.add_kernel(Kernel("k"))
    b = DFGBuilder("body")
    seed = b.input("seed", i32)
    results = []
    for i in range(pes):
        call = b.call(f"PE_{i}", [seed], i32, latency=10 + i, name=f"r{i}")
        call.attrs["area"] = {"luts": 500, "ffs": 500}
        if pruned_flags:
            call.attrs["sync_pruned"] = i == pes - 1
        results.append(call.result)
    b.fifo_write(out, b.reduce(results, "or"))
    kernel.add_loop(Loop("farm", b.build(), trip_count=64, pipeline=False))
    design.verify()
    return design


class TestDatapath:
    def test_bram_cells_match_buffer(self):
        gen = generate(stream_design(buffer_depth=1 << 16))
        banks = [c for c in gen.netlist.cells.values() if c.kind is CellKind.BRAM]
        assert len(banks) == Buffer("m", i32, 1 << 16).bram36_units()

    def test_store_broadcast_net_kind(self):
        gen = generate(stream_design(buffer_depth=1 << 16))
        wdata = [n for n in gen.netlist.nets.values() if "wdata" in n.name]
        assert wdata and all(n.kind is NetKind.MEM for n in wdata)

    def test_pipeline_regs_inserted_for_crossings(self):
        design = Design("x", meta={"clock_mhz": 300})
        kernel = design.add_kernel(Kernel("k"))
        b = DFGBuilder("body")
        v = b.input("v", i32)
        r = b.reg(v)
        r2 = b.reg(r)
        b.add(r2, r2)
        kernel.add_loop(Loop("l", b.build(), trip_count=4, pipeline=True))
        design.verify()
        gen = generate(design)
        regs = [c for c in gen.netlist.cells.values() if c.kind is CellKind.FF]
        assert len(regs) >= 3  # input capture + 2 REG stages

    def test_netlist_validates(self):
        for control in ControlStyle:
            gen = generate(stream_design(), control)
            gen.netlist.validate()

    def test_resources_accumulate(self):
        gen = generate(stream_design(buffer_depth=1 << 16))
        assert gen.resources.brams >= 50
        assert gen.resources.luts > 0


class TestStallControl:
    def test_enable_net_reaches_everything(self):
        gen = generate(stream_design(buffer_depth=1 << 16), ControlStyle.STALL)
        enables = gen.netlist.nets_of_kind(NetKind.ENABLE)
        biggest = max(enables, key=lambda n: n.fanout)
        banks = Buffer("m", i32, 1 << 16).bram36_units()
        assert biggest.fanout >= banks  # every BRAM WE is gated

    def test_enable_driver_is_comb(self):
        gen = generate(stream_design(), ControlStyle.STALL)
        enables = gen.netlist.nets_of_kind(NetKind.ENABLE)
        assert any(n.driver.kind is CellKind.LOGIC for n in enables)

    def test_status_count_recorded(self):
        gen = generate(stream_design(fifo_count=3), ControlStyle.STALL)
        info = gen.loops[0]
        assert info.statuses == 3


class TestSkidControl:
    def test_valid_chain_length_equals_depth(self):
        gen = generate(stream_design(), ControlStyle.SKID)
        info = gen.loops[0]
        valids = [
            c for c in gen.netlist.cells.values() if ".valid" in c.name
        ]
        assert len(valids) == info.depth

    def test_skid_fifo_created(self):
        gen = generate(stream_design(), ControlStyle.SKID)
        info = gen.loops[0]
        assert info.skid_specs
        assert info.skid_specs[-1].depth == info.depth + 1

    def test_minarea_never_more_bits(self):
        naive = generate(stream_design(buffer_depth=1 << 16), ControlStyle.SKID)
        mina = generate(stream_design(buffer_depth=1 << 16), ControlStyle.SKID_MINAREA)
        naive_bits = sum(s.bits for s in naive.loops[0].skid_specs)
        mina_bits = sum(s.bits for s in mina.loops[0].skid_specs)
        assert mina_bits <= naive_bits

    def test_read_gate_fanout_small(self):
        gen = generate(stream_design(buffer_depth=1 << 16), ControlStyle.SKID)
        read_en = [n for n in gen.netlist.nets.values() if "read_en" in n.name]
        assert read_en and all(n.fanout <= 8 for n in read_en)

    def test_bank_we_driven_by_register(self):
        gen = generate(stream_design(buffer_depth=1 << 16), ControlStyle.SKID)
        we_nets = [
            n
            for n in gen.netlist.nets_of_kind(NetKind.ENABLE)
            if any(cell.kind is CellKind.BRAM for cell, _p in n.sinks)
        ]
        assert we_nets
        assert all(n.driver.kind is CellKind.FF for n in we_nets)


class TestCallSync:
    def test_unpruned_has_reduce_gate(self):
        gen = generate(farm_design())
        assert any("done_reduce" in name for name in gen.netlist.cells)

    def test_unpruned_start_driven_by_comb(self):
        gen = generate(farm_design())
        start = next(n for n in gen.netlist.nets.values() if n.name.endswith(".start"))
        assert start.driver.kind is CellKind.LOGIC
        assert start.kind is NetKind.SYNC

    def test_pruned_start_driven_by_done_ff(self):
        gen = generate(farm_design(pruned_flags=True))
        assert not any("done_reduce" in name for name in gen.netlist.cells)
        start = next(n for n in gen.netlist.nets.values() if n.name.endswith(".start"))
        assert start.driver.kind is CellKind.FF

    def test_chained_calls_get_no_sync(self):
        design = Design("chaincalls")
        kernel = design.add_kernel(Kernel("k"))
        b = DFGBuilder("body")
        v = b.input("v", i32)
        for i in range(3):
            v = b.call(f"st{i}", [v], i32, latency=5).result
        out = design.add_fifo(Fifo("o", i32, external=True))
        b.fifo_write(out, v)
        kernel.add_loop(Loop("l", b.build(), pipeline=True))
        design.verify()
        gen = generate(design)
        assert not any("done_reduce" in n for n in gen.netlist.cells)

    def test_call_area_from_attrs(self):
        gen = generate(farm_design(pes=4))
        calls = [c for c in gen.netlist.cells.values() if c.tag.startswith("call:")]
        assert len(calls) == 4
        assert all(c.luts == 500 for c in calls)


class TestExternalPads:
    def test_pad_per_external_fifo(self):
        gen = generate(stream_design(fifo_count=3))
        pads = [c for c in gen.netlist.cells.values() if c.name.startswith("pad_")]
        assert len(pads) == 3

    def test_missing_schedule_rejected(self):
        design = apply_pragmas(stream_design())
        with pytest.raises(Exception):
            generate_netlist(design, {}, GenOptions())
