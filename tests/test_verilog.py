"""Tests for structural Verilog emission (repro.rtl.verilog)."""

import re

from repro.rtl.netlist import CellKind, Netlist, NetKind
from repro.rtl.verilog import emit_verilog, write_verilog


def sample_netlist():
    nl = Netlist("my design!")  # deliberately awkward name
    src = nl.new_cell("src reg", CellKind.FF, ffs=8, width=8, delay_ns=0.1)
    logic = nl.new_cell("adder#0", CellKind.LOGIC, luts=8, width=8, delay_ns=0.46)
    out = nl.new_cell("q", CellKind.FF, ffs=8, width=8, delay_ns=0.1)
    nl.connect("d net", src, [(logic, "i")], width=8)
    nl.connect("o-net", logic, [(out, "d")], kind=NetKind.DATA, width=8)
    return nl


class TestEmission:
    def test_identifiers_escaped(self):
        text = emit_verilog(sample_netlist())
        assert "my_design_" in text
        assert "adder#0" not in text

    def test_one_instance_per_cell(self):
        nl = sample_netlist()
        text = emit_verilog(nl, include_primitives=False)
        assert text.count("REPRO_FF ") == 2
        assert text.count("REPRO_LOGIC ") == 1

    def test_one_wire_per_net(self):
        nl = sample_netlist()
        text = emit_verilog(nl, include_primitives=False)
        assert len(re.findall(r"^\s*wire ", text, re.M)) == len(nl.nets)

    def test_delay_params_in_ps(self):
        text = emit_verilog(sample_netlist())
        assert ".DELAY_PS(460)" in text
        assert ".CLK2Q_PS(100)" in text

    def test_net_kind_comments(self):
        text = emit_verilog(sample_netlist())
        assert "kind=data" in text

    def test_primitive_library_optional(self):
        with_lib = emit_verilog(sample_netlist(), include_primitives=True)
        without = emit_verilog(sample_netlist(), include_primitives=False)
        assert "repro primitive library" in with_lib
        assert "repro primitive library" not in without

    def test_module_balance(self):
        """Every `module` has a matching `endmodule` (parse sanity)."""
        text = emit_verilog(sample_netlist())
        assert text.count("module ") - text.count("endmodule") == text.count("endmodule") * 0 + (
            len(re.findall(r"^module ", text, re.M)) - text.count("endmodule")
        )
        assert len(re.findall(r"\bendmodule\b", text)) == len(
            re.findall(r"^module ", text, re.M)
        )

    def test_write_to_file(self, tmp_path):
        path = tmp_path / "out.v"
        write_verilog(sample_netlist(), str(path))
        assert path.read_text().startswith("//")


class TestGeneratedDesignEmission:
    def test_full_design_emits(self, flow, mini_design):
        from repro.opt import BASELINE

        result = flow.run(mini_design, BASELINE)
        text = emit_verilog(result.gen.netlist)
        assert text.count("REPRO_BRAM") >= mini_design.buffers["buf"].bram36_units()
        assert "endmodule" in text
