"""Tests for repro.ir.program: buffers, fifos, loops, kernels, designs."""

import pytest

from repro.errors import VerificationError
from repro.ir.builder import DFGBuilder
from repro.ir.program import BRAM36_BITS, Buffer, Design, Fifo, Kernel, Loop
from repro.ir.types import DataType, i32, u64

u512 = DataType("uint", 512)


class TestBuffer:
    def test_small_buffer_one_bram(self):
        assert Buffer("b", i32, 16).bram36_units() == 1

    def test_units_grow_with_depth(self):
        small = Buffer("s", i32, 1024).bram36_units()
        large = Buffer("l", i32, 1024 * 64).bram36_units()
        assert large > small

    def test_wide_elements_slice_by_width(self):
        # One 512-bit word needs ceil(512/72)=8 parallel BRAM36s.
        assert Buffer("w", u512, 4).bram36_units() == 8

    def test_partitioning_multiplies_minimum(self):
        assert Buffer("p", i32, 64, partition=8).bram36_units() == 8

    def test_stream_buffer_fills_vu9p(self):
        # The Table-1 stream buffer: ~95% of 2160 BRAM36.
        units = Buffer("big", u64, 1_179_648).bram36_units()
        assert 1940 <= units <= 2160

    def test_total_bits(self):
        assert Buffer("b", i32, 100).total_bits == 3200

    def test_depth_validation(self):
        with pytest.raises(VerificationError):
            Buffer("b", i32, 0)

    def test_partition_validation(self):
        with pytest.raises(VerificationError):
            Buffer("b", i32, 4, partition=8)


class TestFifo:
    def test_width_from_elem(self):
        assert Fifo("f", u64).width == 64

    def test_depth_validation(self):
        with pytest.raises(VerificationError):
            Fifo("f", i32, depth=0)


def make_loop(name="l", fifo=None, buffer=None, **kwargs):
    b = DFGBuilder(f"{name}_body")
    x = b.input("x", i32)
    if fifo is not None:
        x = b.fifo_read(fifo)
    y = b.add(x, b.const(1, i32))
    if fifo is not None:
        b.fifo_write(fifo, y)
    if buffer is not None:
        b.store(buffer, b.input("i", i32), y)
    return Loop(name, b.build(), **kwargs)


class TestLoop:
    def test_static_latency(self):
        assert make_loop(trip_count=10).has_static_latency
        assert not make_loop(trip_count=None).has_static_latency

    def test_fifo_endpoints(self):
        fifo = Fifo("f", i32)
        loop = make_loop(fifo=fifo)
        reads, writes = loop.fifo_endpoints()
        assert reads == ["f"] and writes == ["f"]

    def test_buffers_touched(self):
        buf = Buffer("m", i32, 32)
        loop = make_loop(buffer=buf)
        assert loop.buffers_touched() == ["m"]


class TestDesign:
    def test_duplicate_kernel_rejected(self):
        d = Design("d")
        d.add_kernel(Kernel("k"))
        with pytest.raises(VerificationError):
            d.add_kernel(Kernel("k"))

    def test_duplicate_fifo_rejected(self):
        d = Design("d")
        d.add_fifo(Fifo("f", i32))
        with pytest.raises(VerificationError):
            d.add_fifo(Fifo("f", i32))

    def test_verify_requires_registered_fifo(self):
        d = Design("d")
        rogue = Fifo("rogue", i32)
        k = d.add_kernel(Kernel("k"))
        k.add_loop(make_loop(fifo=rogue))
        with pytest.raises(VerificationError):
            d.verify()

    def test_verify_requires_registered_buffer(self):
        d = Design("d")
        rogue = Buffer("rogue", i32, 8)
        k = d.add_kernel(Kernel("k"))
        k.add_loop(make_loop(buffer=rogue))
        with pytest.raises(VerificationError):
            d.verify()

    def test_dataflow_fifo_needs_both_sides(self):
        d = Design("d", dataflow=True)
        fifo = d.add_fifo(Fifo("f", i32))
        k = d.add_kernel(Kernel("k"))
        b = DFGBuilder("body")
        b.fifo_write(fifo, b.input("x", i32))
        k.add_loop(Loop("w", b.build()))
        with pytest.raises(VerificationError):
            d.verify()

    def test_external_fifo_exempt_from_pairing(self):
        d = Design("d", dataflow=True)
        fifo = d.add_fifo(Fifo("f", i32, external=True))
        k = d.add_kernel(Kernel("k"))
        b = DFGBuilder("body")
        b.fifo_write(fifo, b.input("x", i32))
        k.add_loop(Loop("w", b.build()))
        d.verify()

    def test_clone_independent(self):
        d = Design("d")
        fifo = d.add_fifo(Fifo("f", i32))
        buf = d.add_buffer(Buffer("m", i32, 8))
        k = d.add_kernel(Kernel("k"))
        k.add_loop(make_loop(fifo=fifo, buffer=buf, trip_count=4, pipeline=True))
        clone = d.clone()
        clone.verify()
        # attrs rebound to the clone's objects
        for _, loop in clone.all_loops():
            for op in loop.body.ops:
                if "fifo" in op.attrs:
                    assert op.attrs["fifo"] is clone.fifos["f"]
                if "buffer" in op.attrs:
                    assert op.attrs["buffer"] is clone.buffers["m"]
        # pragma metadata preserved
        assert clone.kernels[0].loops[0].pipeline

    def test_all_loops_order(self):
        d = Design("d")
        k1 = d.add_kernel(Kernel("k1"))
        k1.add_loop(make_loop("a"))
        k1.add_loop(make_loop("b"))
        k2 = d.add_kernel(Kernel("k2"))
        k2.add_loop(make_loop("c"))
        names = [loop.name for _, loop in d.all_loops()]
        assert names == ["a", "b", "c"]
