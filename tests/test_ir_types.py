"""Tests for repro.ir.types."""

import pytest

from repro.errors import IRError
from repro.ir.types import (
    DataType,
    common_type,
    f16,
    f32,
    f64,
    i1,
    i8,
    i32,
    i64,
    u16,
    u32,
)


class TestDataTypeConstruction:
    def test_int_width(self):
        t = DataType("int", 24)
        assert t.bits == 24
        assert t.is_int and not t.is_float

    def test_uint_kind(self):
        t = DataType("uint", 512)
        assert t.is_int
        assert not t.is_signed

    def test_float_widths_allowed(self):
        for width in (16, 32, 64):
            assert DataType("float", width).is_float

    def test_float_width_rejected(self):
        with pytest.raises(IRError):
            DataType("float", 24)

    def test_bad_kind_rejected(self):
        with pytest.raises(IRError):
            DataType("fixed", 8)

    def test_zero_width_rejected(self):
        with pytest.raises(IRError):
            DataType("int", 0)

    def test_negative_width_rejected(self):
        with pytest.raises(IRError):
            DataType("int", -4)

    def test_overwide_rejected(self):
        with pytest.raises(IRError):
            DataType("uint", 5000)

    def test_frozen(self):
        with pytest.raises(Exception):
            i32.width = 64  # type: ignore[misc]


class TestDataTypeProperties:
    def test_bool_detection(self):
        assert i1.is_bool
        assert not i8.is_bool

    def test_signedness(self):
        assert i32.is_signed
        assert not u32.is_signed
        assert f32.is_signed

    def test_with_width(self):
        assert i8.with_width(16) == DataType("int", 16)

    def test_hashable_as_table_key(self):
        table = {i32: 1, f32: 2}
        assert table[DataType("int", 32)] == 1

    def test_equality(self):
        assert DataType("float", 32) == f32
        assert f32 != f64

    def test_str_roundtrips_via_parse(self):
        for t in (i1, i8, i32, i64, u16, u32, f16, f32, f64):
            assert DataType.parse(str(t)) == t


class TestParse:
    def test_parse_int(self):
        assert DataType.parse("i32") == i32

    def test_parse_uint(self):
        assert DataType.parse("u16") == u16

    def test_parse_float(self):
        assert DataType.parse("f64") == f64

    @pytest.mark.parametrize("bad", ["", "x32", "i", "iXY", "32"])
    def test_parse_rejects(self, bad):
        with pytest.raises(IRError):
            DataType.parse(bad)


class TestCommonType:
    def test_same_type(self):
        assert common_type(i32, i32) == i32

    def test_wider_int_wins(self):
        assert common_type(i8, i32) == i32

    def test_float_wins_over_int(self):
        assert common_type(i32, f32) == f32

    def test_wider_float_wins(self):
        assert common_type(f32, f64) == f64

    def test_signed_wins_at_equal_width(self):
        assert common_type(u32, i32) == i32

    def test_uint_pair_stays_unsigned(self):
        assert common_type(u16, u32) == u32
