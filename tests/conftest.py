"""Shared fixtures.

The expensive artifact is the §4.1 calibration (dozens of placements).
Most tests use the synthetic :class:`CalibrationTable` from
:mod:`repro.testing`; the few exercising real characterization restrict
their factor sweeps.
"""

from __future__ import annotations

import os

import pytest

from repro.delay.calibrated import CalibratedDelayModel, CalibrationTable
from repro.flow import Flow
from repro.ir.program import Design
from repro.testing import (
    stream_to_buffer_design,
    synthetic_calibration,
    unrolled_broadcast_design,
)


def make_synthetic_table() -> CalibrationTable:
    return synthetic_calibration()


def make_mini_stream_design(depth: int = 8192, unroll: int = 1) -> Design:
    return stream_to_buffer_design(depth=depth, unroll=unroll)


def make_unrolled_compute_design(unroll: int = 16) -> Design:
    return unrolled_broadcast_design(unroll=unroll)


@pytest.fixture(scope="session", autouse=True)
def _isolated_calibration_cache(tmp_path_factory):
    """Point the persistent calibration cache at a session temp dir.

    Tests must neither read a developer's warm ``~/.cache/repro`` (hiding
    cold-path bugs) nor write to it (polluting real state).
    """
    cache_dir = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def synthetic_table() -> CalibrationTable:
    return make_synthetic_table()


@pytest.fixture(scope="session")
def calibrated_model(synthetic_table) -> CalibratedDelayModel:
    return CalibratedDelayModel(synthetic_table)


@pytest.fixture()
def flow(synthetic_table) -> Flow:
    """A flow wired to the synthetic calibration (fast and deterministic)."""
    return Flow(calibration=synthetic_table)


@pytest.fixture()
def mini_design() -> Design:
    return make_mini_stream_design()


@pytest.fixture()
def unrolled_design() -> Design:
    return make_unrolled_compute_design()
