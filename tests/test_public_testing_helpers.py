"""Tests for the public fixtures module (repro.testing)."""

import pytest

from repro.delay.tables import hls_predicted_delay
from repro.errors import PhysicalError, VerificationError
from repro.flow import Flow
from repro.ir.ops import Opcode
from repro.ir.types import i32
from repro.opt import BASELINE
from repro.testing import (
    pe_farm_design,
    stream_to_buffer_design,
    synthetic_calibration,
    unrolled_broadcast_design,
)


class TestSyntheticCalibration:
    def test_matches_hls_at_factor_one(self):
        table = synthetic_calibration()
        assert table.lookup("add_i32", 1) == pytest.approx(
            hls_predicted_delay(Opcode.ADD, i32), abs=0.02
        )

    def test_all_common_keys_present(self):
        table = synthetic_calibration()
        for key in (
            "add_i32",
            "sub_i32",
            "mul_i32",
            "add_f32",
            "mul_f32",
            "load_bram",
            "store_bram",
        ):
            assert table.lookup(key, 64) is not None, key

    def test_curves_monotone(self):
        table = synthetic_calibration()
        for key in table.keys():
            delays = [d for _f, d in table.points(key)]
            assert delays == sorted(delays), key


class TestDesignFactories:
    def test_all_factories_verify(self):
        for design in (
            stream_to_buffer_design(),
            unrolled_broadcast_design(),
            pe_farm_design(),
        ):
            design.verify()

    def test_farm_dynamic_flag(self):
        design = pe_farm_design(pes=4, dynamic_index=2)
        dyn = [
            op
            for _k, l in design.all_loops()
            for op in l.body.ops
            if op.attrs.get("dynamic_latency")
        ]
        assert len(dyn) == 1

    def test_farm_runs_through_flow(self):
        flow = Flow(calibration=synthetic_calibration())
        result = flow.run(pe_farm_design(pes=6), BASELINE)
        assert result.fmax_mhz > 0
        assert "sync" in result.timing.class_periods


class TestFlowErrorPaths:
    def test_unknown_device_raises(self):
        design = stream_to_buffer_design()
        design.device = "asic-7nm"
        with pytest.raises(PhysicalError):
            Flow(calibration=synthetic_calibration()).run(design, BASELINE)

    def test_broken_design_rejected_before_work(self):
        from repro.ir.builder import DFGBuilder
        from repro.ir.program import Design, Fifo, Kernel, Loop

        design = Design("broken")
        rogue = Fifo("unregistered", i32)
        b = DFGBuilder("body")
        b.fifo_write(rogue, b.input("x", i32))
        design.add_kernel(Kernel("k")).add_loop(Loop("l", b.build()))
        with pytest.raises(VerificationError):
            Flow(calibration=synthetic_calibration()).run(design, BASELINE)
